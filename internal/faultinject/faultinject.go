// Package faultinject deliberately corrupts IR in ways that mimic pass
// bugs, to prove the checked pipeline's verifier (internal/verify)
// actually catches them. Each Class breaks exactly one invariant the
// out-of-SSA correctness argument depends on; the robustness tests
// assert that verify.Func rejects every class and that the pipeline
// surfaces the rejection as a *pipeline.PassError naming the pass the
// corruption was injected after.
//
// Injection is deterministic: each class corrupts the first applicable
// site in block/instruction order, so a failing test reproduces
// exactly.
package faultinject

import (
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
)

// Class names one corruption. The value is stable and human-readable;
// it appears in test names and failure messages.
type Class string

const (
	// ClobberPhiArg redirects a φ argument to a fresh value that has no
	// definition anywhere — the shape of a renaming bug. Caught by the
	// SSA check (undefined φ use).
	ClobberPhiArg Class = "clobber-phi-arg"
	// DuplicatePin pins the two first φ definitions of one block to a
	// common fresh resource, violating the paper's Figure 4 case 3 (φs
	// execute in parallel and cannot share a register). Caught by the
	// pin-legality check.
	DuplicatePin Class = "duplicate-pin"
	// UseBeforeDef rewires an operand to a value defined later in the
	// same block — a scheduling/ordering bug. Caught by the SSA
	// dominance check.
	UseBeforeDef Class = "use-before-def"
	// BrokenCopyCycle inserts a parallel copy that writes one
	// destination twice — the shape of a sequentialization bug. Caught
	// by the parallel-copy consistency check.
	BrokenCopyCycle Class = "broken-copy-cycle"
	// DoubleDef adds a second definition of an existing SSA value.
	// Caught by the SSA single-definition check.
	DoubleDef Class = "double-def"
	// PhiArityMismatch drops the last argument of a φ, desynchronizing
	// it from its block's predecessor list. Caught by the structural
	// check.
	PhiArityMismatch Class = "phi-arity-mismatch"
	// DanglingEdge appends a successor edge without the matching
	// predecessor backlink. Caught by the structural CFG symmetry
	// check.
	DanglingEdge Class = "dangling-edge"
	// MisplacedPhi swaps a φ below a non-φ instruction, breaking the
	// φ-prefix rule the parallel φ semantics rely on. Caught by the
	// structural check.
	MisplacedPhi Class = "misplaced-phi"
	// StaleVarLiveness swaps two φ arguments across predecessor slots,
	// choosing a pair where one argument's definition does not dominate
	// the other's slot — the shape of a bug whose per-variable liveness
	// summaries go stale: the moved use extends one variable's live
	// range into a region its memoized walk never covered, while every
	// block, pin and instruction count stays plausible. Injected
	// silently, cached query-engine Infos keep answering from the old
	// walks; caught by the SSA φ-argument dominance check.
	StaleVarLiveness Class = "stale-var-liveness"
)

// Classes lists every corruption class, in a fixed order.
var Classes = []Class{
	ClobberPhiArg,
	DuplicatePin,
	UseBeforeDef,
	BrokenCopyCycle,
	DoubleDef,
	PhiArityMismatch,
	DanglingEdge,
	MisplacedPhi,
	StaleVarLiveness,
}

// Inject applies the corruption class c to f, mutating it, and reports
// whether an applicable site was found (e.g. ClobberPhiArg needs a φ).
// When it returns false, f is unchanged.
//
// Inject honors the ir.Func mutation contract: a successful injection
// calls NoteCFGMutation (some classes, like DanglingEdge, splice the
// block graph in place, and over-invalidating is always safe),
// modelling a buggy-but-well-behaved pass. Analyses requested
// afterwards therefore see the corrupted function — which is what lets
// the checked-mode verifier catch the damage. InjectSilent is the
// contract-violating variant.
func Inject(f *ir.Func, c Class) bool {
	if !InjectSilent(f, c) {
		return false
	}
	f.NoteCFGMutation()
	return true
}

// InjectSilent is Inject without the NoteMutation bump: it models a pass
// that mutates the IR but violates the generation-counter contract, so
// cached analyses remain (wrongly) valid. Classes that corrupt through
// the ir mutator API (NewValue, InsertAt, ...) still bump the counter
// automatically; the purely in-place classes — UseBeforeDef,
// PhiArityMismatch, DanglingEdge, MisplacedPhi, StaleVarLiveness — are
// the genuinely silent ones. The analysis cache tests use this to
// demonstrate what staleness looks like; everything else should call
// Inject.
func InjectSilent(f *ir.Func, c Class) bool {
	switch c {
	case ClobberPhiArg:
		return clobberPhiArg(f)
	case DuplicatePin:
		return duplicatePin(f)
	case UseBeforeDef:
		return useBeforeDef(f)
	case BrokenCopyCycle:
		return brokenCopyCycle(f)
	case DoubleDef:
		return doubleDef(f)
	case PhiArityMismatch:
		return phiArityMismatch(f)
	case DanglingEdge:
		return danglingEdge(f)
	case MisplacedPhi:
		return misplacedPhi(f)
	case StaleVarLiveness:
		return staleVarLiveness(f)
	}
	return false
}

func firstPhi(f *ir.Func) *ir.Instr {
	for _, b := range f.Blocks {
		if phis := b.Phis(); len(phis) > 0 {
			return phis[0]
		}
	}
	return nil
}

func clobberPhiArg(f *ir.Func) bool {
	phi := firstPhi(f)
	if phi == nil || len(phi.Uses) == 0 {
		return false
	}
	phi.Uses[0].Val = f.NewValue("fault.undef")
	return true
}

func duplicatePin(f *ir.Func) bool {
	for _, b := range f.Blocks {
		phis := b.Phis()
		if len(phis) < 2 {
			continue
		}
		res := f.NewValue("fault.res")
		ir.PinDef(phis[0], 0, res)
		ir.PinDef(phis[1], 0, res)
		return true
	}
	return false
}

func useBeforeDef(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.Phi || len(in.Uses) == 0 {
				continue
			}
			// A value defined strictly later in the same block.
			for _, later := range b.Instrs[i+1:] {
				for _, d := range later.Defs {
					if d.Val.IsPhys() || d.Val == in.Uses[0].Val {
						continue
					}
					in.Uses[0].Val = d.Val
					return true
				}
			}
		}
	}
	return false
}

func brokenCopyCycle(f *ir.Func) bool {
	var v *ir.Value
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				if !d.Val.IsPhys() {
					v = d.Val
					break
				}
			}
		}
	}
	if v == nil {
		return false
	}
	pc := &ir.Instr{Op: ir.ParCopy,
		Defs: []ir.Operand{{Val: v}, {Val: v}},
		Uses: []ir.Operand{{Val: v}, {Val: v}}}
	f.Entry().InsertBeforeTerminator(pc)
	return true
}

func doubleDef(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.Phi || in.Op.IsTerminator() {
				continue
			}
			for _, d := range in.Defs {
				if d.Val.IsPhys() {
					continue
				}
				b.InsertAt(i+1, &ir.Instr{Op: ir.Copy,
					Defs: []ir.Operand{{Val: d.Val}},
					Uses: []ir.Operand{{Val: d.Val}}})
				return true
			}
		}
	}
	return false
}

func phiArityMismatch(f *ir.Func) bool {
	phi := firstPhi(f)
	if phi == nil || len(phi.Uses) == 0 {
		return false
	}
	phi.Uses = phi.Uses[:len(phi.Uses)-1]
	return true
}

func danglingEdge(f *ir.Func) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	b := f.Blocks[0]
	b.Succs = append(b.Succs, f.Blocks[len(f.Blocks)-1])
	return true
}

// staleVarLiveness swaps two arguments of one φ across predecessor
// slots. The pair is chosen so the swap is provably wrong: the first
// argument's definition must not dominate the slot it is moved into,
// which guarantees the φ-argument dominance check rejects the result
// (a swap between symmetric arguments could produce valid SSA and go
// undetected). The corruption is operand-only — block structure,
// instruction counts and pins all stay intact — so the only evidence
// is liveness flowing along the wrong φ edges.
func staleVarLiveness(f *ir.Func) bool {
	defBlk := make(map[*ir.Value]*ir.Block)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, d := range in.Defs {
				if !d.Val.IsPhys() {
					defBlk[d.Val] = b
				}
			}
		}
	}
	dom := cfg.Dominators(f)
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			n := len(phi.Uses)
			if n > len(b.Preds) {
				n = len(b.Preds)
			}
			for i := 0; i < n; i++ {
				vi := phi.Uses[i].Val
				if vi.IsPhys() || defBlk[vi] == nil {
					continue
				}
				for j := 0; j < n; j++ {
					vj := phi.Uses[j].Val
					if i == j || vi == vj || vj.IsPhys() {
						continue
					}
					if !dom.Dominates(defBlk[vi], b.Preds[j]) {
						phi.Uses[i].Val, phi.Uses[j].Val = vj, vi
						return true
					}
				}
			}
		}
	}
	return false
}

func misplacedPhi(f *ir.Func) bool {
	for _, b := range f.Blocks {
		n := b.FirstNonPhi()
		if n == 0 || n >= len(b.Instrs) {
			continue
		}
		b.Instrs[n-1], b.Instrs[n] = b.Instrs[n], b.Instrs[n-1]
		return true
	}
	return false
}
