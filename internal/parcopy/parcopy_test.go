package parcopy_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
)

// buildParCopyFunc creates input(v0..vn-1); pcopy(perm); output(all).
func buildParCopyFunc(n int, dst, src []int) *ir.Func {
	bld := ir.NewBuilder("pc")
	bld.Block("entry")
	vals := make([]ir.ValueID, n)
	for i := range vals {
		vals[i] = bld.Val("")
	}
	bld.Input(vals...)
	pc := bld.Fn.NewInstr(ir.ParCopy, nil, nil)
	for i := range dst {
		pc.AddDef(ir.Operand{Val: vals[dst[i]]})
		pc.AddUse(ir.Operand{Val: vals[src[i]]})
	}
	bld.Cur.Append(pc)
	bld.Output(vals...)
	return bld.Fn
}

func runBoth(t *testing.T, n int, dst, src []int, args []int64) bool {
	t.Helper()
	ref := buildParCopyFunc(n, dst, src)
	want, err := ir.Exec(ref, args, 10000)
	if err != nil {
		t.Fatal(err)
	}
	f := buildParCopyFunc(n, dst, src)
	parcopy.Sequentialize(f)
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.ParCopy {
				t.Fatal("ParCopy survived sequentialization")
			}
		}
	}
	got, err := ir.Exec(f, args, 10000)
	if err != nil {
		t.Fatal(err)
	}
	return want.Equal(got)
}

func TestSwapCycle(t *testing.T) {
	// (a,b) = (b,a): a 2-cycle needs a temp, 3 copies.
	if !runBoth(t, 2, []int{0, 1}, []int{1, 0}, []int64{10, 20}) {
		t.Fatal("swap broken")
	}
	f := buildParCopyFunc(2, []int{0, 1}, []int{1, 0})
	n := parcopy.Sequentialize(f)
	if n != 3 {
		t.Fatalf("2-cycle lowered to %d copies, want 3", n)
	}
}

func TestLongCycle(t *testing.T) {
	// (a,b,c) = (c,a,b)
	if !runBoth(t, 3, []int{0, 1, 2}, []int{2, 0, 1}, []int64{1, 2, 3}) {
		t.Fatal("3-cycle broken")
	}
	f := buildParCopyFunc(3, []int{0, 1, 2}, []int{2, 0, 1})
	if n := parcopy.Sequentialize(f); n != 4 {
		t.Fatalf("3-cycle lowered to %d copies, want 4", n)
	}
}

func TestChain(t *testing.T) {
	// (a,b,c) = (b,c,c): chain, no cycle, no temp needed.
	if !runBoth(t, 3, []int{0, 1}, []int{1, 2}, []int64{1, 2, 3}) {
		t.Fatal("chain broken")
	}
	f := buildParCopyFunc(3, []int{0, 1}, []int{1, 2})
	if n := parcopy.Sequentialize(f); n != 2 {
		t.Fatalf("chain lowered to %d copies, want 2", n)
	}
}

func TestFanOut(t *testing.T) {
	// (a,b) = (c,c): one source feeding two destinations.
	if !runBoth(t, 3, []int{0, 1}, []int{2, 2}, []int64{5, 6, 7}) {
		t.Fatal("fan-out broken")
	}
}

func TestSelfCopiesDropped(t *testing.T) {
	f := buildParCopyFunc(2, []int{0, 1}, []int{0, 1})
	if n := parcopy.Sequentialize(f); n != 0 {
		t.Fatalf("self parallel copy emitted %d copies, want 0", n)
	}
}

// Property: an arbitrary parallel assignment (random dst permutation
// fragment, random sources) is sequentialized correctly.
func TestRandomAssignments(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// Distinct destinations.
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n)
		dst := perm[:k]
		src := make([]int, k)
		for i := range src {
			src[i] = rng.Intn(n)
		}
		args := make([]int64, n)
		for i := range args {
			args[i] = int64(rng.Intn(1000))
		}
		return runBoth(t, n, dst, src, args)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFullPermutationCycle rotates all n values through a single cycle:
// the worst case for the sequentializer, needing exactly one temp and
// n+1 copies, for several n.
func TestFullPermutationCycle(t *testing.T) {
	for n := 2; n <= 7; n++ {
		dst := make([]int, n)
		src := make([]int, n)
		args := make([]int64, n)
		for i := 0; i < n; i++ {
			dst[i] = i
			src[i] = (i + 1) % n
			args[i] = int64(100 + i)
		}
		if !runBoth(t, n, dst, src, args) {
			t.Fatalf("%d-cycle broken", n)
		}
		f := buildParCopyFunc(n, dst, src)
		if got := parcopy.Sequentialize(f); got != n+1 {
			t.Fatalf("%d-cycle lowered to %d copies, want %d (one temp)", n, got, n+1)
		}
	}
}

// TestCheckDetectsDuplicateDestination: the verifier-facing Check must
// reject a parallel copy writing one destination twice — the parallel
// semantics would be nondeterministic.
func TestCheckDetectsDuplicateDestination(t *testing.T) {
	f := buildParCopyFunc(3, []int{0, 1}, []int{1, 2})
	var pc *ir.Instr
	for _, in := range f.Blocks()[0].Instrs() {
		if in.Op() == ir.ParCopy {
			pc = in
		}
	}
	if err := parcopy.Check(pc); err != nil {
		t.Fatalf("valid parallel copy rejected: %v", err)
	}
	pc.SetDefVal(1, pc.Def(0)) // (a, a) = (b, c)
	if err := parcopy.Check(pc); err == nil {
		t.Fatal("duplicated destination not detected")
	}
}

// TestCheckDetectsArityMismatch: a destination without a paired source
// (or vice versa) must be rejected before Lower indexes out of range.
func TestCheckDetectsArityMismatch(t *testing.T) {
	f := buildParCopyFunc(3, []int{0, 1}, []int{1, 2})
	var pc *ir.Instr
	for _, in := range f.Blocks()[0].Instrs() {
		if in.Op() == ir.ParCopy {
			pc = in
		}
	}
	for pc.NumUses() > 1 {
		pc.RemoveUseAt(pc.NumUses() - 1)
	}
	if err := parcopy.Check(pc); err == nil {
		t.Fatal("def/use arity mismatch not detected")
	}
}

// TestCheckAllowsSelfCopy: a self copy (a = a) is legal — the
// sequentializer simply drops it.
func TestCheckAllowsSelfCopy(t *testing.T) {
	f := buildParCopyFunc(2, []int{0, 1}, []int{0, 1})
	for _, in := range f.Blocks()[0].Instrs() {
		if in.Op() == ir.ParCopy {
			if err := parcopy.Check(in); err != nil {
				t.Fatalf("self copy rejected: %v", err)
			}
		}
	}
}

// Mixed cycles and chains in one parallel copy.
func TestCycleAndChainMix(t *testing.T) {
	// (a,b,c,d) = (b,a,a,c): swap a<->b plus chain into c,d.
	if !runBoth(t, 4, []int{0, 1, 2, 3}, []int{1, 0, 0, 2}, []int64{1, 2, 3, 4}) {
		t.Fatal("mixed parallel copy broken")
	}
}
