// Package parcopy sequentializes parallel copies. Replacing φ
// instructions produces parallel copies at predecessor block ends (all
// sources read before any destination is written); hardware has only
// sequential moves, so cycles — the classic swap problem — must be broken
// with a temporary (Briggs et al.).
package parcopy

import (
	"fmt"

	"outofssa/internal/ir"
)

// Check validates one parallel copy: def/use slots must pair up and the
// destinations must be pairwise distinct — a duplicated destination
// makes the parallel write nondeterministic (two sources race for one
// slot), which no correct φ replacement ever produces. The checked
// pipeline's verifier calls this on every ParCopy it encounters.
func Check(pc *ir.Instr) error {
	if pc.Op() != ir.ParCopy {
		return fmt.Errorf("parcopy: %q is not a parallel copy", pc)
	}
	if pc.NumDefs() != pc.NumUses() {
		return fmt.Errorf("parcopy: %q has %d destinations for %d sources",
			pc, pc.NumDefs(), pc.NumUses())
	}
	seen := make(map[ir.ValueID]bool, pc.NumDefs())
	for _, d := range pc.Defs() {
		if d.Val == ir.NoValue {
			return fmt.Errorf("parcopy: missing destination in %q", pc)
		}
		if seen[d.Val] {
			return fmt.Errorf("parcopy: destination %v duplicated in %q", pc.Func().VStr(d.Val), pc)
		}
		seen[d.Val] = true
	}
	return nil
}

// Sequentialize lowers every ParCopy instruction of f into an equivalent
// sequence of Copy instructions, allocating at most one temporary per
// copy cycle. Self copies are dropped. Returns the number of Copy
// instructions emitted.
func Sequentialize(f *ir.Func) int {
	emitted := 0
	for _, b := range f.Blocks() {
		for idx := 0; idx < b.NumInstrs(); idx++ {
			in := b.Instr(idx)
			if in.Op() != ir.ParCopy {
				continue
			}
			seq := Lower(f, in)
			b.RemoveAt(idx)
			for k, c := range seq {
				b.InsertAt(idx+k, c)
			}
			idx += len(seq) - 1
			emitted += len(seq)
		}
	}
	return emitted
}

// Lower returns the sequential Copy list equivalent to the parallel copy
// pc. The algorithm repeatedly emits copies whose destination is not a
// pending source; when none exists every pending destination is also a
// source — a cycle — which is broken by saving one destination to a fresh
// temporary.
func Lower(f *ir.Func, pc *ir.Instr) []*ir.Instr {
	type cp struct{ dst, src ir.ValueID }
	var pending []cp
	for i := 0; i < pc.NumDefs(); i++ {
		d, s := pc.Def(i), pc.Use(i)
		if d != s {
			pending = append(pending, cp{d, s})
		}
	}
	var out []*ir.Instr
	emit := func(d, s ir.ValueID) {
		out = append(out, f.NewInstr(ir.Copy,
			[]ir.Operand{{Val: d}}, []ir.Operand{{Val: s}}))
	}
	for len(pending) > 0 {
		progress := false
		for i := 0; i < len(pending); {
			d := pending[i].dst
			isSrc := false
			for j, p := range pending {
				if j != i && p.src == d {
					isSrc = true
					break
				}
			}
			if isSrc {
				i++
				continue
			}
			emit(d, pending[i].src)
			pending = append(pending[:i], pending[i+1:]...)
			progress = true
		}
		if !progress && len(pending) > 0 {
			// Pure cycle(s): break one by parking a destination in a temp.
			tmp := f.NewValue("")
			broken := pending[0]
			emit(tmp, broken.dst)
			for j := range pending {
				if pending[j].src == broken.dst {
					pending[j].src = tmp
				}
			}
		}
	}
	return out
}
