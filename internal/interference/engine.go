package interference

import (
	"sort"

	"outofssa/internal/bitset"
	"outofssa/internal/ir"
	"outofssa/internal/pin"
)

// Engine selects the Resource_killed / Resource_interfere implementation.
type Engine int

const (
	// EngineDominance (the default) answers resource-level queries with a
	// dominance-ordered stack sweep over the class's definition points
	// (Budimlić-style dominance forest): O(k log k) for the sort plus a
	// walk of the current dominance chain, instead of the O(k²) pairwise
	// Kills expansion. Classes at or below sweepCutoff virtual members
	// dispatch to the pairwise expansion, which is faster at tiny k.
	// Results are bit-for-bit identical to EnginePairwise either way;
	// engines_test.go cross-checks them on the fuzz corpus.
	EngineDominance Engine = iota
	// EnginePairwise is the original O(k²) expansion, kept as the oracle
	// for cross-checking and for `ssabench -interference-engine=pairwise`.
	EnginePairwise
)

func (e Engine) String() string {
	if e == EnginePairwise {
		return "pairwise"
	}
	return "dominance"
}

// DefaultEngine is the engine NewResourceGraph installs; ssabench's
// -interference-engine flag overrides it process-wide.
var DefaultEngine = EngineDominance

// ResourceGraph lifts variable interference to resources (§3.3). It
// consults pin.Resources for membership, so queries remain correct as
// the coalescer merges classes; resource-level verdicts are memoized
// keyed on the Resources generation, so repeated probes between merges
// (the greedy affinity pruning re-asks constantly) cost a map hit.
type ResourceGraph struct {
	An  *Analysis
	Res *pin.Resources

	// Engine selects the query implementation; both produce identical
	// verdicts.
	Engine Engine

	// Sites are the pinned-use clobber points of the function (φ uses
	// excluded — those are Class 2).
	Sites []PinSite

	killedMemo    map[ir.ValueID]killedEntry
	interfereMemo map[[2]ir.ValueID]interfereEntry
	pool          bitset.Pool

	// Sweep scratch, recycled across queries: defPoint structs, the
	// point-slice headers, and the dominance-chain stack. The sweeps run
	// once per (resource, generation) but the coalescer's probe loop makes
	// that tens of thousands of times per function, so their steady-state
	// allocation rate has to be zero.
	ptFree  []*defPoint
	bufFree [][]*defPoint
	stack   []*defPoint
}

type killedEntry struct {
	gen uint64
	set *bitset.Set
}

type interfereEntry struct {
	gen     uint64
	verdict bool
}

// NewResourceGraph pairs an analysis with resource classes and collects
// the pinned-use clobber sites.
func NewResourceGraph(an *Analysis, res *pin.Resources) *ResourceGraph {
	g := &ResourceGraph{
		An:            an,
		Res:           res,
		Engine:        DefaultEngine,
		killedMemo:    make(map[ir.ValueID]killedEntry),
		interfereMemo: make(map[[2]ir.ValueID]interfereEntry),
	}
	for _, b := range an.fn.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() == ir.Phi {
				continue
			}
			for _, u := range in.Uses() {
				if u.Pinned() {
					g.Sites = append(g.Sites, PinSite{Pin: u.Pin(), Val: u.Val, In: in})
				}
			}
		}
	}
	return g
}

// KilledSet implements Resource_killed: the members of v's resource that
// are killed by some other member (or by themselves, for the lost-copy
// case), or by a pinned use writing the resource while they are live.
// The returned set is memoized and must be treated as read-only; it is
// valid until the next Resources.Union.
func (g *ResourceGraph) KilledSet(v ir.ValueID) *bitset.Set {
	g.An.c.ResourceKilled++
	root := g.Res.Find(v)
	gen := g.Res.Gen()
	if e, ok := g.killedMemo[root]; ok && e.gen == gen {
		g.An.c.KilledMemoHits++
		return e.set
	}
	var s *bitset.Set
	if g.Engine == EnginePairwise {
		s = g.killedPairwise(root, g.Res.Members(root))
	} else {
		s = g.killedSweep(root)
	}
	g.killedMemo[root] = killedEntry{gen: gen, set: s}
	return s
}

// Killed is KilledSet as a map, for callers (and tests) that want value
// keys rather than a bitset.
func (g *ResourceGraph) Killed(v ir.ValueID) map[ir.ValueID]bool {
	set := g.KilledSet(v)
	killed := make(map[ir.ValueID]bool, set.Len())
	set.ForEach(func(id int) { killed[ir.ValueID(id)] = true })
	return killed
}

// Interfere implements Resource_interfere(A, B): merging the two
// resources would create a new simple interference (a repair not already
// needed) or a strong interference (incorrect code).
func (g *ResourceGraph) Interfere(a, b ir.ValueID) bool {
	g.An.c.ResourceInterfere++
	ra, rb := g.Res.Find(a), g.Res.Find(b)
	if ra == rb {
		return false
	}
	if g.An.fn.IsPhys(ra) && g.An.fn.IsPhys(rb) {
		return true // distinct dedicated registers
	}
	key := [2]ir.ValueID{ra, rb}
	if key[0] > key[1] {
		key[0], key[1] = key[1], key[0]
	}
	gen := g.Res.Gen()
	if e, ok := g.interfereMemo[key]; ok && e.gen == gen {
		g.An.c.InterfereMemoHits++
		return e.verdict
	}
	var v bool
	if g.Engine == EnginePairwise {
		v = g.interferePairwise(ra, rb, g.Res.Members(ra), g.Res.Members(rb))
	} else {
		v = g.interfereSweep(ra, rb)
	}
	g.interfereMemo[key] = interfereEntry{gen: gen, verdict: v}
	return v
}

// ---------------------------------------------------------------------
// Pairwise engine: the direct O(k²) expansion of the paper's lifting.

func (g *ResourceGraph) killedPairwise(root ir.ValueID, members []ir.ValueID) *bitset.Set {
	f := g.An.fn
	killed := bitset.New(f.NumValues())
	for _, ai := range members {
		if f.IsPhys(ai) {
			continue
		}
		for _, aj := range members {
			if f.IsPhys(aj) {
				continue
			}
			if g.An.Kills(aj, ai) {
				killed.Add(int(ai))
				break
			}
		}
	}
	for _, site := range g.Sites {
		if g.Res.Find(site.Pin) != root {
			continue
		}
		for _, m := range members {
			if f.IsPhys(m) || killed.Has(int(m)) {
				continue
			}
			if site.kills(g.An, m) {
				killed.Add(int(m))
			}
		}
	}
	return killed
}

func (g *ResourceGraph) interferePairwise(ra, rb ir.ValueID, ma, mb []ir.ValueID) bool {
	f := g.An.fn
	killedA := g.KilledSet(ra)
	killedB := g.KilledSet(rb)
	for _, x := range ma {
		if f.IsPhys(x) {
			continue
		}
		for _, y := range mb {
			if f.IsPhys(y) {
				continue
			}
			if !killedA.Has(int(x)) && g.An.Kills(y, x) {
				return true
			}
			if !killedB.Has(int(y)) && g.An.Kills(x, y) {
				return true
			}
			if g.An.StronglyInterfere(x, y) {
				return true
			}
		}
	}
	// A pinned use writing one resource kills live members of the other
	// once merged.
	for _, site := range g.Sites {
		rs := g.Res.Find(site.Pin)
		var victims []ir.ValueID
		var killedV *bitset.Set
		switch rs {
		case ra:
			victims, killedV = mb, killedB
		case rb:
			victims, killedV = ma, killedA
		default:
			continue
		}
		for _, m := range victims {
			if f.IsPhys(m) || killedV.Has(int(m)) {
				continue
			}
			if site.kills(g.An, m) {
				return true
			}
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Dominance engine.
//
// In strict SSA a value live at a program point has its definition
// dominating that point, so every Class-1 kill pair within a class is an
// ancestor/descendant pair among the members' definition points in the
// dominator tree (the descendant's definition clobbers the still-live
// ancestor). Sorting the definition points in dominator-tree preorder
// and sweeping a stack of the current dominance chain therefore
// enumerates exactly the pairs the pairwise expansion tests positive
// dominance for — and the liveness half of the test depends only on the
// killer's definition *point*, not on which member defined there, so it
// runs once per (point, ancestor) instead of once per member pair.

// defPoint is one program point defining members of a class: a non-φ
// instruction (idxKey = its index) or the φ prefix of a block
// (idxKey = -1; φ defs act in parallel at block entry). region is -1
// for blocks reachable from the entry and the block ID otherwise:
// unreachable blocks have no preorder interval, but dominance within
// such a block is still instruction order, so each one sweeps as its
// own chain (cross-block dominance involving an unreachable block is
// always false, matching instrDominates).
type defPoint struct {
	region int
	pre    int // dominator-tree preorder of the block
	idxKey int
	block  *ir.Block
	def    *ir.Instr // representative def (any φ of the block for idxKey -1)
	side   int       // 0/1 during Interfere merges; 0 for Killed
	vals   []ir.ValueID
}

// covers reports whether a definition at point p strictly dominates a
// definition at a later (in sweep order) distinct point q — exactly
// instrDominates lifted to points.
func (g *ResourceGraph) covers(p, q *defPoint) bool {
	if p.block != q.block {
		return p.region == -1 && q.region == -1 &&
			g.An.dom.StrictlyDominates(p.block, q.block)
	}
	return p.idxKey < q.idxKey
}

// takePoint returns a recycled defPoint (vals emptied, member capacity
// retained) or a fresh one when the free list is dry.
func (g *ResourceGraph) takePoint() *defPoint {
	if n := len(g.ptFree); n > 0 {
		p := g.ptFree[n-1]
		g.ptFree = g.ptFree[:n-1]
		p.vals = p.vals[:0]
		return p
	}
	return &defPoint{}
}

// takeBuf returns an empty point slice with recycled capacity.
func (g *ResourceGraph) takeBuf() []*defPoint {
	if n := len(g.bufFree); n > 0 {
		b := g.bufFree[n-1]
		g.bufFree = g.bufFree[:n-1]
		return b[:0]
	}
	return nil
}

// putPoints recycles the points and the slice header for the next query.
func (g *ResourceGraph) putPoints(pts []*defPoint) {
	g.ptFree = append(g.ptFree, pts...)
	g.bufFree = append(g.bufFree, pts)
}

// collectPoints groups the def-carrying virtual members of a class by
// definition point, in sweep order. It reports a collision when some
// point already holds members of another side (Interfere passes
// merge=true): members of both classes defined at one point means either
// two results of one instruction (strong interference) or two φs of one
// block (Class 4) — interference either way. The returned slice is valid
// either way and must be recycled with putPoints.
func (g *ResourceGraph) collectPoints(pts []*defPoint, members []ir.ValueID, side int, merge bool) ([]*defPoint, bool) {
	an := g.An
	for _, m := range members {
		if an.fn.IsPhys(m) {
			continue
		}
		def := an.defs[m]
		if def == nil {
			continue
		}
		b := def.Block()
		idxKey := an.defIdx[m]
		if def.Op() == ir.Phi {
			idxKey = -1
		}
		found := false
		for _, p := range pts {
			if p.block == b && p.idxKey == idxKey {
				if merge && p.side != side {
					return pts, true
				}
				p.vals = append(p.vals, m)
				found = true
				break
			}
		}
		if !found {
			region := -1
			pre := an.dom.PreNum(b)
			if pre < 0 {
				region = int(b.ID)
			}
			p := g.takePoint()
			p.region, p.pre, p.idxKey = region, pre, idxKey
			p.block, p.def, p.side = b, def, side
			p.vals = append(p.vals, m)
			pts = append(pts, p)
		}
	}
	return pts, false
}

func pointLess(a, b *defPoint) bool {
	if a.region != b.region {
		return a.region < b.region
	}
	if a.pre != b.pre {
		return a.pre < b.pre
	}
	return a.idxKey < b.idxKey
}

// sortPoints orders points for the sweep. Classes rarely exceed a few
// dozen definition points, where insertion sort beats the allocation and
// indirection of sort.Slice; large classes fall back to it.
func sortPoints(pts []*defPoint) {
	if len(pts) <= 64 {
		for i := 1; i < len(pts); i++ {
			p := pts[i]
			j := i - 1
			for j >= 0 && pointLess(p, pts[j]) {
				pts[j+1] = pts[j]
				j--
			}
			pts[j+1] = p
		}
		return
	}
	sort.Slice(pts, func(i, j int) bool { return pointLess(pts[i], pts[j]) })
}

// killsAtPoint reports whether a definition at point p Class-1-kills the
// still-earlier-defined victim, replicating the mode switch of Kills
// with defV = p's definition. The test reads only p (every member
// defined at one point shares its live-after set and block), which is
// what lets the sweep run it per point instead of per member pair.
func (an *Analysis) killsAtPoint(p *defPoint, victim ir.ValueID) bool {
	switch an.mode {
	case Exact:
		return an.liveAfterHas(p.def, victim)
	case Optimistic:
		return an.live.LiveOut(victim, p.block)
	default: // Pessimistic
		return an.live.LiveIn(victim, p.block) ||
			an.defs[victim].Block() == p.block
	}
}

// sweepCutoff is the class size (virtual members) at or below which the
// dominance engine answers with the pairwise expansion: at tiny k the
// O(k²) loop over memoized sparse-liveness queries is cheaper than
// mobilizing the sweep (point grouping, pooled sets, chain stack), and
// most classes stay tiny — the sweep earns its keep on the large pinned
// classes (SP ties, ABI chains, late-coalescing merges) where k² bites.
// The crossover was measured with BenchmarkInterferenceQueries; verdicts
// are identical on both sides of the cutoff (engines_test.go holds for
// any value of it).
const sweepCutoff = 8

func virtualCount(f *ir.Func, members []ir.ValueID) int {
	n := 0
	for _, m := range members {
		if !f.IsPhys(m) {
			n++
		}
	}
	return n
}

func (g *ResourceGraph) killedSweep(root ir.ValueID) *bitset.Set {
	an := g.An
	f := an.fn
	members := g.Res.Members(root)
	if virtualCount(f, members) <= sweepCutoff {
		return g.killedPairwise(root, members)
	}
	nv := f.NumValues()
	killed := bitset.New(nv)

	// Class 2: a φ member's replacement move at the end of predecessor i
	// clobbers every member live out of that predecessor other than the
	// incoming argument (the lost-copy self-kill included). Point queries
	// per member rather than an intersection with the dense live-out set:
	// under the query engine only the members' own walks are consulted.
	for _, m := range members {
		if f.IsPhys(m) {
			continue
		}
		def := an.defs[m]
		if def == nil || def.Op() != ir.Phi {
			continue
		}
		blk := def.Block()
		for i, u := range def.Uses() {
			arg := u.Val
			for _, v := range members {
				if f.IsPhys(v) || v == arg || killed.Has(int(v)) {
					continue
				}
				if an.live.LiveOut(v, blk.Pred(i)) {
					killed.Add(int(v))
				}
			}
		}
	}

	// Class 1: dominance-ordered stack sweep. alive counts stack members
	// not yet killed — once it hits zero the per-point liveness tests are
	// skipped (early exit), though points still push for later groups.
	pts, _ := g.collectPoints(g.takeBuf(), members, 0, false)
	defer func() { g.putPoints(pts) }()
	sortPoints(pts)
	stack := g.stack[:0]
	defer func() { g.stack = stack[:0] }()
	alive := 0
	unkilledOf := func(p *defPoint) int {
		n := 0
		for _, m := range p.vals {
			if !killed.Has(int(m)) {
				n++
			}
		}
		return n
	}
	for _, p := range pts {
		if len(stack) > 0 && stack[0].region != p.region {
			stack, alive = stack[:0], 0
		}
		for len(stack) > 0 && !g.covers(stack[len(stack)-1], p) {
			alive -= unkilledOf(stack[len(stack)-1])
			stack = stack[:len(stack)-1]
		}
		if alive > 0 {
			for _, q := range stack {
				for _, victim := range q.vals {
					if killed.Has(int(victim)) {
						continue
					}
					if an.killsAtPoint(p, victim) {
						killed.Add(int(victim))
						alive--
					}
				}
			}
		}
		alive += unkilledOf(p)
		stack = append(stack, p)
	}

	// Pinned-use clobbers: a use pinned to this resource writes it just
	// before its instruction, killing members live across that point.
	for _, site := range g.Sites {
		if g.Res.Find(site.Pin) != root {
			continue
		}
		for _, m := range members {
			if f.IsPhys(m) || killed.Has(int(m)) {
				continue
			}
			if site.kills(an, m) {
				killed.Add(int(m))
			}
		}
	}
	return killed
}

func (g *ResourceGraph) interfereSweep(ra, rb ir.ValueID) bool {
	an := g.An
	f := an.fn
	ma, mb := g.Res.Members(ra), g.Res.Members(rb)
	// The pairwise cost of Interfere is the PRODUCT of the class sizes
	// (one huge class probed against a singleton is only k queries), so
	// the cutoff is on the product.
	if virtualCount(f, ma)*virtualCount(f, mb) <= sweepCutoff*sweepCutoff {
		return g.interferePairwise(ra, rb, ma, mb)
	}
	killedA := g.KilledSet(ra)
	killedB := g.KilledSet(rb)
	nv := f.NumValues()

	// Shared definition points across the two classes interfere outright
	// (same instruction → strong; same block's φ prefix → Class 4).
	pts, collide := g.collectPoints(g.takeBuf(), ma, 0, true)
	if !collide {
		pts, collide = g.collectPoints(pts, mb, 1, true)
	}
	defer func() { g.putPoints(pts) }()
	if collide {
		return true
	}

	// Class 3: φs of different blocks must agree on arguments flowing
	// from shared predecessors. Only φ×φ cross pairs can trip this (and
	// same-block pairs already returned above), so the pairwise check
	// shrinks to the classes' φ members.
	for _, p := range pts {
		if p.idxKey != -1 || p.side != 0 {
			continue
		}
		for _, q := range pts {
			if q.idxKey != -1 || q.side != 1 {
				continue
			}
			for _, x := range p.vals {
				defX := an.defs[x]
				for _, y := range q.vals {
					defY := an.defs[y]
					for i, u := range defX.Uses() {
						j := defY.Block().PredIndex(defX.Block().Pred(i).ID)
						if j >= 0 && u.Val != defY.Use(j) {
							return true
						}
					}
				}
			}
		}
	}

	// aliveA/aliveB: virtual members not already killed within their own
	// class — the victim candidates (a kill already repaired is not a
	// *new* interference).
	aliveA := g.pool.Get(nv)
	aliveB := g.pool.Get(nv)
	defer g.pool.Put(aliveA)
	defer g.pool.Put(aliveB)
	for _, x := range ma {
		if !f.IsPhys(x) && !killedA.Has(int(x)) {
			aliveA.Add(int(x))
		}
	}
	for _, y := range mb {
		if !f.IsPhys(y) && !killedB.Has(int(y)) {
			aliveB.Add(int(y))
		}
	}

	// Class 2 across the merge: a φ member of one class clobbering an
	// alive member of the other at a predecessor exit. Point queries per
	// victim keep the query engine on its memoized per-variable walks.
	phiClobbers := func(members []ir.ValueID, victims *bitset.Set) bool {
		for _, m := range members {
			if f.IsPhys(m) {
				continue
			}
			def := an.defs[m]
			if def == nil || def.Op() != ir.Phi {
				continue
			}
			blk := def.Block()
			for i, u := range def.Uses() {
				pred := blk.Pred(i)
				for id := victims.NextSet(0); id >= 0; id = victims.NextSet(id + 1) {
					if ir.ValueID(id) != u.Val && an.live.LiveOut(ir.ValueID(id), pred) {
						return true
					}
				}
			}
		}
		return false
	}
	if phiClobbers(ma, aliveB) || phiClobbers(mb, aliveA) {
		return true
	}

	// Class 1 across the merge: one merged sweep over both classes'
	// definition points; a point kills an alive opposite-side ancestor ⇒
	// the merge creates a new interference.
	sortPoints(pts)
	stack := g.stack[:0]
	defer func() { g.stack = stack[:0] }()
	for _, p := range pts {
		if len(stack) > 0 && stack[0].region != p.region {
			stack = stack[:0]
		}
		for len(stack) > 0 && !g.covers(stack[len(stack)-1], p) {
			stack = stack[:len(stack)-1]
		}
		alive := aliveA
		if p.side == 0 {
			alive = aliveB
		}
		for _, q := range stack {
			if q.side == p.side {
				continue
			}
			for _, victim := range q.vals {
				if alive.Has(int(victim)) && an.killsAtPoint(p, victim) {
					return true
				}
			}
		}
		stack = append(stack, p)
	}

	// Pinned-use clobbers across the merge.
	for _, site := range g.Sites {
		rs := g.Res.Find(site.Pin)
		var victims *bitset.Set
		switch rs {
		case ra:
			victims = aliveB
		case rb:
			victims = aliveA
		default:
			continue
		}
		for id := victims.NextSet(0); id >= 0; id = victims.NextSet(id + 1) {
			if site.kills(an, ir.ValueID(id)) {
				return true
			}
		}
	}
	return false
}
