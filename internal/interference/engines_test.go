package interference_test

import (
	"fmt"
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// crossCheckEngines builds two resource graphs over the same function,
// pins and resource classes — one per engine — and requires bit-for-bit
// identical Resource_killed sets and Resource_interfere verdicts, both
// on the initial classes and again after a round of φ-affinity merges
// (which exercises multi-member classes, the generation-keyed memo
// invalidation, and the merged-class sweep paths).
func crossCheckEngines(t *testing.T, f *ir.Func, mode interference.Mode) {
	t.Helper()
	cfg.SplitCriticalEdges(f)
	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatalf("NewResources: %v", err)
	}
	live := liveness.Compute(f)
	dom := cfg.Dominators(f)
	an := interference.New(f, live, dom, mode)
	gD := interference.NewResourceGraph(an, res)
	gD.Engine = interference.EngineDominance
	gP := interference.NewResourceGraph(an, res)
	gP.Engine = interference.EnginePairwise

	roots := func() []ir.ValueID {
		seen := make(map[ir.ValueID]bool)
		var out []ir.ValueID
		for id := 0; id < f.NumValues(); id++ {
			r := res.Find(ir.ValueID(id))
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		return out
	}
	check := func(stage string) {
		rs := roots()
		for _, r := range rs {
			kd, kp := gD.KilledSet(r), gP.KilledSet(r)
			if !kd.Equal(kp) {
				t.Fatalf("%s: %s: Resource_killed(%v) diverges:\n dominance %v\n pairwise  %v",
					stage, f.Name, f.VStr(r), kd.Elems(), kp.Elems())
			}
		}
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				vd := gD.Interfere(rs[i], rs[j])
				vp := gP.Interfere(rs[i], rs[j])
				if vd != vp {
					t.Fatalf("%s: %s: Resource_interfere(%v, %v): dominance=%v pairwise=%v",
						stage, f.Name, rs[i], rs[j], vd, vp)
				}
			}
		}
	}

	check("initial")

	// Merge a handful of non-interfering φ-affine classes — the same
	// unions the coalescer's residual sweep would perform — and
	// re-check on the grown classes.
	merges := 0
	for _, b := range f.Blocks() {
		for _, phi := range b.Phis() {
			for _, u := range phi.Uses() {
				a, x := res.Find(u.Val), res.Find(phi.Def(0))
				if a == x {
					continue
				}
				vd, vp := gD.Interfere(a, x), gP.Interfere(a, x)
				if vd != vp {
					t.Fatalf("merge probe: %s: Resource_interfere(%v, %v): dominance=%v pairwise=%v",
						f.Name, a, x, vd, vp)
				}
				if vd {
					continue
				}
				if _, err := res.Union(a, x); err == nil {
					merges++
				}
				if merges >= 8 {
					break
				}
			}
		}
	}
	check("after merges")
}

// pinnedRand generates a random structured program, converts it to SSA
// and applies the real pin-collect phases (SP ties, ABI slots), so the
// classes and pin sites the engines see match the production pipeline.
func pinnedRand(t *testing.T, seed int64, opt testprog.RandOptions) *ir.Func {
	t.Helper()
	f := testprog.Rand(seed, opt)
	info, err := ssa.Build(f)
	if err != nil {
		t.Fatalf("ssa.Build(seed %d): %v", seed, err)
	}
	pin.CollectSP(f, info)
	pin.CollectABI(f)
	return f
}

var allModes = []interference.Mode{interference.Exact, interference.Optimistic, interference.Pessimistic}

// TestEnginesAgreeOnRandomFunctions is the property test: over random
// pinned-SSA functions, for all three modes, the dominance sweep and the
// pairwise oracle must agree exactly.
func TestEnginesAgreeOnRandomFunctions(t *testing.T) {
	for _, mode := range allModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				crossCheckEngines(t, pinnedRand(t, seed, testprog.DefaultRandOptions()), mode)
			}
		})
	}
}

// TestEnginesAgreeOnSuites cross-checks on the deterministic test
// programs, which carry hand-built corner cases (lost copy, swap).
func TestEnginesAgreeOnSuites(t *testing.T) {
	builders := []func() *ir.Func{
		testprog.Diamond, testprog.Loop, testprog.SwapLoop, testprog.NestedLoops,
	}
	for _, mode := range allModes {
		for i, mk := range builders {
			f := mk()
			if _, err := ssa.Build(f); err != nil {
				t.Fatalf("builder %d: %v", i, err)
			}
			crossCheckEngines(t, f, mode)
		}
	}
}

// fuzzEngineOptions maps the fuzzed size to generator knobs, mirroring
// the pipeline differential fuzzer so crashers transfer between the two
// corpora.
func fuzzEngineOptions(size int64) testprog.RandOptions {
	if size < 0 {
		size = -size
	}
	return testprog.RandOptions{
		MaxDepth:      int(1 + size%3),
		Vars:          int(3 + (size/3)%5),
		StmtsPerBlock: int(1 + (size/18)%5),
		Calls:         size%2 == 0,
		Stack:         (size/2)%2 == 0,
	}
}

// FuzzInterferenceEngines fuzzes the dominance engine against the
// pairwise oracle over random functions and all three modes.
func FuzzInterferenceEngines(f *testing.F) {
	f.Add(int64(0), int64(0))
	f.Add(int64(1), int64(17))
	f.Add(int64(7), int64(36))
	f.Add(int64(42), int64(5))
	f.Add(int64(1002), int64(90))
	f.Fuzz(func(t *testing.T, seed, size int64) {
		opt := fuzzEngineOptions(size)
		for _, mode := range allModes {
			fn := pinnedRand(t, seed, opt)
			fn.Name = fmt.Sprintf("%s-%s", fn.Name, mode)
			crossCheckEngines(t, fn, mode)
		}
	})
}
