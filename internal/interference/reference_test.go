package interference_test

import (
	"testing"

	"outofssa/internal/bitset"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

// TestInterfereMatchesOverlapReference validates the dominance-based SSA
// interference test (Budimlic et al.) against a brute-force reference:
// two values interfere iff some program point has both live. The only
// allowed divergences are the documented conservative cases — two
// results of one instruction and two φ definitions of one block always
// report interference.
func TestInterfereMatchesOverlapReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		live := liveness.Compute(f)
		an := analyze(f, interference.Exact)

		// Collect every "point set": live values after each instruction,
		// at each block entry (including the parallel φ definitions that
		// are born there), and at each block's φ-copy point.
		var points []*bitset.Set
		for _, b := range f.Blocks() {
			entry := live.LiveInSet(b).Copy()
			for _, phi := range b.Phis() {
				// A φ def participates at entry only if its value is used.
				entry.Add(int(phi.Def(0)))
			}
			points = append(points, entry)
			for i, in := range b.Instrs() {
				p := live.LiveAfter(b, i)
				// The write instant: even a dead definition occupies its
				// register while the instruction executes.
				for _, d := range in.Defs() {
					p.Add(int(d.Val))
				}
				points = append(points, p)
			}
			points = append(points, live.ExitLiveSet(b))
		}
		overlap := func(a, b ir.ValueID) bool {
			for _, p := range points {
				if p.Has(int(a)) && p.Has(int(b)) {
					return true
				}
			}
			return false
		}

		defs := f.SSADefs()
		sameInstr := func(a, b ir.ValueID) bool {
			return defs[a] != nil && defs[a] == defs[b]
		}
		sameBlockPhis := func(a, b ir.ValueID) bool {
			da, db := defs[a], defs[b]
			return da != nil && db != nil && da.Op() == ir.Phi && db.Op() == ir.Phi &&
				da.Block() == db.Block()
		}

		nv := f.NumValues()
		for i := 0; i < nv; i++ {
			for j := i + 1; j < nv; j++ {
				a, b := ir.ValueID(i), ir.ValueID(j)
				if f.IsPhys(a) || f.IsPhys(b) || defs[a] == nil || defs[b] == nil {
					continue
				}
				got := an.Interfere(a, b)
				want := overlap(a, b)
				if got == want {
					continue
				}
				if got && !want && (sameInstr(a, b) || sameBlockPhis(a, b)) {
					continue // documented conservatism
				}
				t.Fatalf("seed %d: Interfere(%v,%v)=%v but overlap=%v\ndef a: %v\ndef b: %v",
					seed, f.VStr(a), f.VStr(b), got, want, defs[a], defs[b])
			}
		}
	}
}
