// Package interference implements the paper's interference machinery
// (§3.2-3.3) on SSA form: variable kills (Classes 1-2), strong
// interference (Classes 3-4), and their lifting to resources
// (Resource_killed, Resource_interfere). It also provides the fuzzy
// optimistic/pessimistic Class-1 variants of Algorithm 4 used by the
// Table 5 ablation.
package interference

import (
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/pin"
)

// Mode selects the Class-1 kill test precision (paper Algorithm 4).
type Mode int

const (
	// Exact uses per-program-point liveness: b is killed by a iff b's def
	// dominates a's def and b is live just after a's definition.
	Exact Mode = iota
	// Optimistic approximates with block live-out: interferences whose
	// later variable dies inside the block are missed (fewer
	// interferences, cheaper; Table 5 "opt").
	Optimistic
	// Pessimistic approximates with block live-in plus same-block
	// co-definition: spurious interferences are reported (Table 5 "pess").
	Pessimistic
)

func (m Mode) String() string {
	switch m {
	case Optimistic:
		return "opt"
	case Pessimistic:
		return "pess"
	}
	return "exact"
}

// Counters tallies the query volume of an Analysis and its resource
// lifting. These are the hot numbers of the paper's Algorithms 2-4 —
// Variable_kills dominates Program_pinning's runtime — and are read by
// the pipeline tracer after each pass. Plain increments on the query
// paths; never reset.
type Counters struct {
	// KillQueries, InterfereQueries and StrongQueries count calls to
	// Kills, Interfere and StronglyInterfere respectively.
	KillQueries      int64
	InterfereQueries int64
	StrongQueries    int64
	// LiveAfterHits/Misses split the memoized live-after-definition
	// lookups into cache hits and set constructions.
	LiveAfterHits   int64
	LiveAfterMisses int64
	// ResourceKilled and ResourceInterfere count the resource-level
	// liftings (each expands to many variable queries).
	ResourceKilled    int64
	ResourceInterfere int64
}

// Analysis answers variable-level interference queries on an SSA
// function. The underlying IR must not change while the analysis is in
// use (resource classes may change freely — they are not consulted here).
type Analysis struct {
	fn   *ir.Func
	live *liveness.Info
	dom  *cfg.DomTree
	mode Mode

	defs   []*ir.Instr // value ID -> unique SSA def
	defIdx []int       // value ID -> index of def within its block

	liveAfter map[*ir.Instr]*bitset.Set // lazily cached per definition

	c Counters
}

// Counters returns a snapshot of the query counters accumulated so far.
func (a *Analysis) Counters() Counters { return a.c }

// New builds an analysis. live and dom must describe the current f.
func New(f *ir.Func, live *liveness.Info, dom *cfg.DomTree, mode Mode) *Analysis {
	a := &Analysis{
		fn:        f,
		live:      live,
		dom:       dom,
		mode:      mode,
		defs:      make([]*ir.Instr, f.NumValues()),
		defIdx:    make([]int, f.NumValues()),
		liveAfter: make(map[*ir.Instr]*bitset.Set),
	}
	for _, b := range f.Blocks {
		for idx, in := range b.Instrs {
			for _, d := range in.Defs {
				a.defs[d.Val.ID] = in
				a.defIdx[d.Val.ID] = idx
			}
		}
	}
	return a
}

// Def returns the unique SSA definition of v, or nil (e.g. physical
// registers have none).
func (a *Analysis) Def(v *ir.Value) *ir.Instr { return a.defs[v.ID] }

// instrDominates reports whether definition x dominates definition y
// strictly (x's value is available when y executes). φ definitions act at
// block entry.
func (a *Analysis) instrDominates(x, y *ir.Instr, xIdx, yIdx int) bool {
	bx, by := x.Block(), y.Block()
	if bx != by {
		return a.dom.StrictlyDominates(bx, by)
	}
	if x.Op == ir.Phi && y.Op == ir.Phi {
		return false // parallel at block entry
	}
	if x.Op == ir.Phi {
		return true
	}
	if y.Op == ir.Phi {
		return false
	}
	return xIdx < yIdx
}

// liveAfterDef returns (cached) the set of values live immediately after
// def executes; for φ defs, the live-in set of the φ's block.
func (a *Analysis) liveAfterDef(def *ir.Instr) *bitset.Set {
	if s, ok := a.liveAfter[def]; ok {
		a.c.LiveAfterHits++
		return s
	}
	a.c.LiveAfterMisses++
	var s *bitset.Set
	b := def.Block()
	if def.Op == ir.Phi {
		s = a.live.LiveInSet(b).Copy()
	} else {
		idx := -1
		for i, in := range b.Instrs {
			if in == def {
				idx = i
				break
			}
		}
		s = a.live.LiveAfter(b, idx)
	}
	a.liveAfter[def] = s
	return s
}

// Kills implements Variable_kills(a, b) — "a kills b" — of Algorithm 2
// (mode Exact) and Algorithm 4 (Optimistic/Pessimistic):
//
//	Case 1: b's definition dominates v's definition and b is still live
//	        when v is defined — defining v in a common resource would
//	        overwrite b's value.
//	Case 2: v is a φ and b is live out of a predecessor contributing an
//	        argument other than b — the φ move at the end of that
//	        predecessor would overwrite b. Note b == v is possible here:
//	        this is the lost-copy self-kill.
func (an *Analysis) Kills(v, b *ir.Value) bool {
	an.c.KillQueries++
	defV, defB := an.defs[v.ID], an.defs[b.ID]
	// Case 1.
	if v != b && defV != nil && defB != nil &&
		an.instrDominates(defB, defV, an.defIdx[b.ID], an.defIdx[v.ID]) {
		switch an.mode {
		case Exact:
			if an.liveAfterDef(defV).Has(b.ID) {
				return true
			}
		case Optimistic:
			if an.live.LiveOut(b, defV.Block()) {
				return true
			}
		case Pessimistic:
			if an.live.LiveIn(b, defV.Block()) || defV.Block() == defB.Block() {
				return true
			}
		}
	}
	// Case 2.
	if defV != nil && defV.Op == ir.Phi {
		blk := defV.Block()
		for i, u := range defV.Uses {
			if b != u.Val && an.live.LiveOut(b, blk.Preds[i]) {
				return true
			}
		}
	}
	return false
}

// StronglyInterfere implements Variable_stronglyInterfere (Classes 3-4):
// strong interferences cannot be repaired, so pinning the two variables
// together would be incorrect.
func (an *Analysis) StronglyInterfere(a, b *ir.Value) bool {
	an.c.StrongQueries++
	if a == b {
		return false
	}
	defA, defB := an.defs[a.ID], an.defs[b.ID]
	if defA == nil || defB == nil {
		return false
	}
	if defA.Op == ir.Phi && defB.Op == ir.Phi {
		ba, bb := defA.Block(), defB.Block()
		if ba == bb {
			return true // Case 4: φs of one block execute in parallel
		}
		// Case 3: arguments flowing from a shared predecessor must agree.
		for i, u := range defA.Uses {
			pred := ba.Preds[i]
			j := bb.PredIndex(pred)
			if j >= 0 && u.Val != defB.Uses[j].Val {
				return true
			}
		}
		return false
	}
	if defA == defB {
		return true // two results of one instruction
	}
	return false
}

// Interfere is the classic SSA interference test used by the Sreedhar
// algorithm and by register coalescing at SSA level: a and b interfere
// iff the dominator-wise earlier one is live at the definition of the
// other (Budimlic et al.).
func (an *Analysis) Interfere(a, b *ir.Value) bool {
	an.c.InterfereQueries++
	if a == b {
		return false
	}
	defA, defB := an.defs[a.ID], an.defs[b.ID]
	if defA == nil || defB == nil {
		return false
	}
	if an.instrDominates(defA, defB, an.defIdx[a.ID], an.defIdx[b.ID]) {
		return an.liveAfterDef(defB).Has(a.ID)
	}
	if an.instrDominates(defB, defA, an.defIdx[b.ID], an.defIdx[a.ID]) {
		return an.liveAfterDef(defA).Has(b.ID)
	}
	// Same instruction or parallel φs: both values born together.
	if defA == defB {
		return true
	}
	if defA.Op == ir.Phi && defB.Op == ir.Phi && defA.Block() == defB.Block() {
		// Parallel φ defs of one block: live ranges both start at entry;
		// they interfere if both are live somewhere, which is true unless
		// one is dead — conservatively report interference.
		return true
	}
	return false
}

// PinSite records a textual use pinned to a resource. Enforcing the pin
// writes the resource just before the instruction, so any other variable
// of that resource still live after the instruction is killed there —
// the ABI analogue of the Class-2 φ-argument clobber.
type PinSite struct {
	// Pin is the resource the use is pinned to (resolve through the
	// union-find at query time).
	Pin *ir.Value
	// Val is the value being read into the resource.
	Val *ir.Value
	// In is the instruction carrying the pinned use.
	In *ir.Instr
	// LiveAfter is the live set immediately after the instruction.
	LiveAfter *bitset.Set
}

// kills reports whether enforcing this pin site clobbers m: m must be
// live across the instruction — values defined by the instruction itself
// are born after the clobber, and values dying at the instruction are
// rescued locally by the translator.
func (s PinSite) kills(m *ir.Value) bool {
	return m != s.Val && s.LiveAfter.Has(m.ID) && !s.In.HasDef(m)
}

// ResourceGraph lifts variable interference to resources (§3.3). It
// consults pin.Resources for membership, so queries remain correct as
// the coalescer merges classes.
type ResourceGraph struct {
	An  *Analysis
	Res *pin.Resources

	// Sites are the pinned-use clobber points of the function (φ uses
	// excluded — those are Class 2).
	Sites []PinSite
}

// NewResourceGraph pairs an analysis with resource classes and collects
// the pinned-use clobber sites.
func NewResourceGraph(an *Analysis, res *pin.Resources) *ResourceGraph {
	g := &ResourceGraph{An: an, Res: res}
	for _, b := range an.fn.Blocks {
		for idx, in := range b.Instrs {
			if in.Op == ir.Phi {
				continue
			}
			var after *bitset.Set
			for _, u := range in.Uses {
				if u.Pin == nil {
					continue
				}
				if after == nil {
					after = an.live.LiveAfter(b, idx)
				}
				g.Sites = append(g.Sites, PinSite{Pin: u.Pin, Val: u.Val, In: in, LiveAfter: after})
			}
		}
	}
	return g
}

// Killed implements Resource_killed: the members of v's resource that are
// killed by some other member (or by themselves, for the lost-copy case),
// or by a pinned use writing the resource while they are live.
func (g *ResourceGraph) Killed(v *ir.Value) map[*ir.Value]bool {
	g.An.c.ResourceKilled++
	root := g.Res.Find(v)
	members := g.Res.Members(root)
	killed := make(map[*ir.Value]bool)
	for _, ai := range members {
		if ai.IsPhys() {
			continue
		}
		for _, aj := range members {
			if aj.IsPhys() {
				continue
			}
			if g.An.Kills(aj, ai) {
				killed[ai] = true
				break
			}
		}
	}
	for _, site := range g.Sites {
		if g.Res.Find(site.Pin) != root {
			continue
		}
		for _, m := range members {
			if m.IsPhys() || killed[m] {
				continue
			}
			if site.kills(m) {
				killed[m] = true
			}
		}
	}
	return killed
}

// Interfere implements Resource_interfere(A, B): merging the two
// resources would create a new simple interference (a repair not already
// needed) or a strong interference (incorrect code).
func (g *ResourceGraph) Interfere(a, b *ir.Value) bool {
	g.An.c.ResourceInterfere++
	ra, rb := g.Res.Find(a), g.Res.Find(b)
	if ra == rb {
		return false
	}
	if ra.IsPhys() && rb.IsPhys() {
		return true // distinct dedicated registers
	}
	ma, mb := g.Res.Members(ra), g.Res.Members(rb)
	killedA := g.Killed(ra)
	killedB := g.Killed(rb)
	for _, x := range ma {
		if x.IsPhys() {
			continue
		}
		for _, y := range mb {
			if y.IsPhys() {
				continue
			}
			if !killedA[x] && g.An.Kills(y, x) {
				return true
			}
			if !killedB[y] && g.An.Kills(x, y) {
				return true
			}
			if g.An.StronglyInterfere(x, y) {
				return true
			}
		}
	}
	// A pinned use writing one resource kills live members of the other
	// once merged.
	for _, site := range g.Sites {
		rs := g.Res.Find(site.Pin)
		var victims []*ir.Value
		var killedV map[*ir.Value]bool
		switch rs {
		case ra:
			victims, killedV = mb, killedB
		case rb:
			victims, killedV = ma, killedA
		default:
			continue
		}
		for _, m := range victims {
			if m.IsPhys() || killedV[m] {
				continue
			}
			if site.kills(m) {
				return true
			}
		}
	}
	return false
}
