// Package interference implements the paper's interference machinery
// (§3.2-3.3) on SSA form: variable kills (Classes 1-2), strong
// interference (Classes 3-4), and their lifting to resources
// (Resource_killed, Resource_interfere). It also provides the fuzzy
// optimistic/pessimistic Class-1 variants of Algorithm 4 used by the
// Table 5 ablation.
package interference

import (
	"outofssa/internal/bitset"
	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
)

// Mode selects the Class-1 kill test precision (paper Algorithm 4).
type Mode int

const (
	// Exact uses per-program-point liveness: b is killed by a iff b's def
	// dominates a's def and b is live just after a's definition.
	Exact Mode = iota
	// Optimistic approximates with block live-out: interferences whose
	// later variable dies inside the block are missed (fewer
	// interferences, cheaper; Table 5 "opt").
	Optimistic
	// Pessimistic approximates with block live-in plus same-block
	// co-definition: spurious interferences are reported (Table 5 "pess").
	Pessimistic
)

func (m Mode) String() string {
	switch m {
	case Optimistic:
		return "opt"
	case Pessimistic:
		return "pess"
	}
	return "exact"
}

// Counters tallies the query volume of an Analysis and its resource
// lifting. These are the hot numbers of the paper's Algorithms 2-4 —
// Variable_kills dominates Program_pinning's runtime — and are read by
// the pipeline tracer after each pass. Plain increments on the query
// paths; never reset.
type Counters struct {
	// KillQueries, InterfereQueries and StrongQueries count calls to
	// Kills, Interfere and StronglyInterfere respectively.
	KillQueries      int64
	InterfereQueries int64
	StrongQueries    int64
	// LiveAfterHits/Misses split the live-after-definition lookups into
	// queries served from existing sparse snapshots and queries that had
	// to build a block's snapshots first.
	LiveAfterHits   int64
	LiveAfterMisses int64
	// ResourceKilled and ResourceInterfere count the resource-level
	// liftings (each expands to many variable queries).
	ResourceKilled    int64
	ResourceInterfere int64
	// KilledMemoHits and InterfereMemoHits count resource-level verdicts
	// served from the generation-keyed memo without recomputation.
	KilledMemoHits    int64
	InterfereMemoHits int64
	// LiveQueryHits/Misses/VarRecomputes report the traffic this analysis
	// drove into the query-based liveness engine (zero under the
	// iterative engine): memo-served point/set queries, queries that had
	// to compute first, and the per-variable walks actually executed.
	LiveQueryHits     int64
	LiveQueryMisses   int64
	LiveVarRecomputes int64
}

// Analysis answers variable-level interference queries on an SSA
// function. The underlying IR must not change while the analysis is in
// use (resource classes may change freely — they are not consulted here).
type Analysis struct {
	fn   *ir.Func
	live *liveness.Info
	dom  *cfg.DomTree
	mode Mode

	defs   []*ir.Instr // value ID -> unique SSA def
	defIdx []int       // value ID -> index of def within its block

	// Live-after-definition sets, built lazily one block at a time: the
	// first query into a block walks it backward once, snapshotting a
	// sparse (sorted value-ID) set at every def-carrying instruction.
	// Sparse snapshots replace the old per-def dense bitsets: queries are
	// a binary search, construction is amortized over the block, and the
	// footprint is the live-set size rather than O(|V|) words per def.
	laSnap  map[*ir.Instr][]int32
	laBuilt []bool // block ID -> snapshots built
	laPool  bitset.Pool

	// liveBase is the liveness engine's counter state when this analysis
	// was created; Counters reports the delta, so per-pass traces stay
	// deterministic even though the Info (and its counters) is shared
	// across passes by the analysis cache.
	liveBase liveness.QueryStats

	c Counters
}

// Counters returns a snapshot of the query counters accumulated so far.
func (a *Analysis) Counters() Counters {
	c := a.c
	qs := a.live.QueryStats()
	c.LiveQueryHits = qs.Hits - a.liveBase.Hits
	c.LiveQueryMisses = qs.Misses - a.liveBase.Misses
	c.LiveVarRecomputes = qs.VarRecomputes - a.liveBase.VarRecomputes
	return c
}

// New builds an analysis. live and dom must describe the current f.
func New(f *ir.Func, live *liveness.Info, dom *cfg.DomTree, mode Mode) *Analysis {
	a := &Analysis{
		fn:       f,
		live:     live,
		dom:      dom,
		mode:     mode,
		defs:     make([]*ir.Instr, f.NumValues()),
		defIdx:   make([]int, f.NumValues()),
		laSnap:   make(map[*ir.Instr][]int32),
		laBuilt:  make([]bool, f.NumBlocks()),
		liveBase: live.QueryStats(),
	}
	for _, b := range f.Blocks() {
		for idx, in := range b.Instrs() {
			for _, d := range in.Defs() {
				a.defs[d.Val] = in
				a.defIdx[d.Val] = idx
			}
		}
	}
	return a
}

// Def returns the unique SSA definition of v, or nil (e.g. physical
// registers have none).
func (a *Analysis) Def(v ir.ValueID) *ir.Instr { return a.defs[v] }

// instrDominates reports whether definition x dominates definition y
// strictly (x's value is available when y executes). φ definitions act at
// block entry.
func (a *Analysis) instrDominates(x, y *ir.Instr, xIdx, yIdx int) bool {
	bx, by := x.Block(), y.Block()
	if bx != by {
		return a.dom.StrictlyDominates(bx, by)
	}
	if x.Op() == ir.Phi && y.Op() == ir.Phi {
		return false // parallel at block entry
	}
	if x.Op() == ir.Phi {
		return true
	}
	if y.Op() == ir.Phi {
		return false
	}
	return xIdx < yIdx
}

// liveAfterHas reports whether the value with the given ID is live
// immediately after def executes; for φ defs, whether it is live-in to
// the φ's block (φ defs act at block entry).
func (a *Analysis) liveAfterHas(def *ir.Instr, id ir.ValueID) bool {
	if def.Op() == ir.Phi {
		a.c.LiveAfterHits++
		return a.live.LiveIn(id, def.Block())
	}
	b := def.Block()
	if !a.laBuilt[b.ID] {
		a.c.LiveAfterMisses++
		a.buildBlockLiveAfter(b)
	} else {
		a.c.LiveAfterHits++
	}
	return sparseHas(a.laSnap[def], int(id))
}

// buildBlockLiveAfter walks b backward once from its exit-live set,
// recording a sparse live-after snapshot at every non-φ instruction that
// carries a def or a pinned use (pin sites need the live-across set even
// when the instruction defines nothing). One walk serves every later
// query into the block.
func (a *Analysis) buildBlockLiveAfter(b *ir.Block) {
	cur := a.laPool.Get(a.fn.NumValues())
	cur.CopyFrom(a.live.ExitLiveSet(b))
	for i := b.NumInstrs() - 1; i >= 0; i-- {
		in := b.Instr(i)
		if in.Op() == ir.Phi {
			break // φ defs are answered from the block's live-in set
		}
		snapshot := in.NumDefs() > 0
		if !snapshot {
			for _, u := range in.Uses() {
				if u.Pinned() {
					snapshot = true
					break
				}
			}
		}
		if snapshot {
			snap := make([]int32, 0, cur.Len())
			cur.ForEach(func(id int) { snap = append(snap, int32(id)) })
			a.laSnap[in] = snap
		}
		for _, d := range in.Defs() {
			cur.Remove(int(d.Val))
		}
		for _, u := range in.Uses() {
			cur.Add(int(u.Val))
		}
	}
	a.laPool.Put(cur)
	a.laBuilt[b.ID] = true
}

// sparseHas reports membership of id in a sorted ID slice.
func sparseHas(s []int32, id int) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(s[mid]) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && int(s[lo]) == id
}

// Kills implements Variable_kills(a, b) — "a kills b" — of Algorithm 2
// (mode Exact) and Algorithm 4 (Optimistic/Pessimistic):
//
//	Case 1: b's definition dominates v's definition and b is still live
//	        when v is defined — defining v in a common resource would
//	        overwrite b's value.
//	Case 2: v is a φ and b is live out of a predecessor contributing an
//	        argument other than b — the φ move at the end of that
//	        predecessor would overwrite b. Note b == v is possible here:
//	        this is the lost-copy self-kill.
func (an *Analysis) Kills(v, b ir.ValueID) bool {
	an.c.KillQueries++
	defV, defB := an.defs[v], an.defs[b]
	// Case 1.
	if v != b && defV != nil && defB != nil &&
		an.instrDominates(defB, defV, an.defIdx[b], an.defIdx[v]) {
		switch an.mode {
		case Exact:
			if an.liveAfterHas(defV, b) {
				return true
			}
		case Optimistic:
			if an.live.LiveOut(b, defV.Block()) {
				return true
			}
		case Pessimistic:
			if an.live.LiveIn(b, defV.Block()) || defV.Block() == defB.Block() {
				return true
			}
		}
	}
	// Case 2.
	if defV != nil && defV.Op() == ir.Phi {
		blk := defV.Block()
		for i, u := range defV.Uses() {
			if b != u.Val && an.live.LiveOut(b, blk.Pred(i)) {
				return true
			}
		}
	}
	return false
}

// StronglyInterfere implements Variable_stronglyInterfere (Classes 3-4):
// strong interferences cannot be repaired, so pinning the two variables
// together would be incorrect.
func (an *Analysis) StronglyInterfere(a, b ir.ValueID) bool {
	an.c.StrongQueries++
	if a == b {
		return false
	}
	defA, defB := an.defs[a], an.defs[b]
	if defA == nil || defB == nil {
		return false
	}
	if defA.Op() == ir.Phi && defB.Op() == ir.Phi {
		ba, bb := defA.Block(), defB.Block()
		if ba == bb {
			return true // Case 4: φs of one block execute in parallel
		}
		// Case 3: arguments flowing from a shared predecessor must agree.
		for i, u := range defA.Uses() {
			pred := ba.Pred(i)
			j := bb.PredIndex(pred.ID)
			if j >= 0 && u.Val != defB.Use(j) {
				return true
			}
		}
		return false
	}
	if defA == defB {
		return true // two results of one instruction
	}
	return false
}

// Interfere is the classic SSA interference test used by the Sreedhar
// algorithm and by register coalescing at SSA level: a and b interfere
// iff the dominator-wise earlier one is live at the definition of the
// other (Budimlic et al.).
func (an *Analysis) Interfere(a, b ir.ValueID) bool {
	an.c.InterfereQueries++
	if a == b {
		return false
	}
	defA, defB := an.defs[a], an.defs[b]
	if defA == nil || defB == nil {
		return false
	}
	if an.instrDominates(defA, defB, an.defIdx[a], an.defIdx[b]) {
		return an.liveAfterHas(defB, a)
	}
	if an.instrDominates(defB, defA, an.defIdx[b], an.defIdx[a]) {
		return an.liveAfterHas(defA, b)
	}
	// Same instruction or parallel φs: both values born together.
	if defA == defB {
		return true
	}
	if defA.Op() == ir.Phi && defB.Op() == ir.Phi && defA.Block() == defB.Block() {
		// Parallel φ defs of one block: live ranges both start at entry;
		// they interfere if both are live somewhere, which is true unless
		// one is dead — conservatively report interference.
		return true
	}
	return false
}

// PinSite records a textual use pinned to a resource. Enforcing the pin
// writes the resource just before the instruction, so any other variable
// of that resource still live after the instruction is killed there —
// the ABI analogue of the Class-2 φ-argument clobber.
type PinSite struct {
	// Pin is the resource the use is pinned to (resolve through the
	// union-find at query time).
	Pin ir.ValueID
	// Val is the value being read into the resource.
	Val ir.ValueID
	// In is the instruction carrying the pinned use.
	In *ir.Instr
}

// kills reports whether enforcing this pin site clobbers m: m must be
// live across the instruction — values defined by the instruction itself
// are born after the clobber, and values dying at the instruction are
// rescued locally by the translator. The live-across test goes through
// the analysis' lazy snapshots (and, under the query engine, its
// memoized per-variable walks) instead of an eagerly stored set.
func (s PinSite) kills(an *Analysis, m ir.ValueID) bool {
	return m != s.Val && an.liveAfterHas(s.In, m) && !s.In.HasDef(m)
}

// The resource-level lifting of these queries — Resource_killed and
// Resource_interfere over pin.Resources classes — lives in engine.go,
// which provides both the original pairwise expansion and the
// dominance-ordered sweep engine.
