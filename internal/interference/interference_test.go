package interference_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/liveness"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
	"outofssa/internal/testprog"
)

func analyze(f *ir.Func, mode interference.Mode) *interference.Analysis {
	return interference.New(f, liveness.Compute(f), cfg.Dominators(f), mode)
}

func valByName(f *ir.Func, name string) ir.ValueID {
	for id := 0; id < f.NumValues(); id++ {
		if f.ValueName(ir.ValueID(id)) == name {
			return ir.ValueID(id)
		}
	}
	return ir.NoValue
}

// Class 1 (Fig. 6 left): x = ...; y = ...; ... = x — y kills x because
// x's def dominates y's def and x is live past y's definition.
func TestClass1Kill(t *testing.T) {
	bld := ir.NewBuilder("class1")
	bld.Block("entry")
	x, y, z := bld.Val("x"), bld.Val("y"), bld.Val("z")
	bld.Const(x, 1)
	bld.Const(y, 2)
	bld.Binary(ir.Add, z, x, y) // x live past y's def
	bld.Output(z)

	an := analyze(bld.Fn, interference.Exact)
	if !an.Kills(y, x) {
		t.Fatal("y must kill x (Class 1)")
	}
	if an.Kills(x, y) {
		t.Fatal("x must not kill y (x defined first)")
	}
}

func TestClass1NoKillWhenDeadAtDef(t *testing.T) {
	bld := ir.NewBuilder("dead")
	bld.Block("entry")
	x, y, z := bld.Val("x"), bld.Val("y"), bld.Val("z")
	bld.Const(x, 1)
	bld.Unary(ir.Neg, y, x) // x dies here
	bld.Unary(ir.Neg, z, y)
	bld.Output(z)

	an := analyze(bld.Fn, interference.Exact)
	if an.Kills(y, x) {
		t.Fatal("x dies at y's def: no kill, the resource can be shared")
	}
}

// Class 2 (Fig. 6 middle): x defined and live out of a predecessor that
// feeds a φ with a different argument — the φ's copy kills x there.
func TestClass2PhiKill(t *testing.T) {
	bld := ir.NewBuilder("class2")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")
	c, x, z1, z2, y, w := bld.Val("c"), bld.Val("x"), bld.Val("z1"), bld.Val("z2"), bld.Val("y"), bld.Val("w")
	bld.SetBlock(entry)
	bld.Input(c, x)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Const(z1, 1)
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Const(z2, 2)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(y, z1, z2)
	bld.Binary(ir.Add, w, y, x) // x live through the φ point
	bld.Output(w)

	an := analyze(bld.Fn, interference.Exact)
	if !an.Kills(y, x) {
		t.Fatal("φ def y must kill x (Class 2: x live out of preds, args differ)")
	}
	if an.Kills(y, z1) {
		t.Fatal("y must not kill its own argument z1 at z1's edge")
	}
}

// The lost-copy self kill: a φ result live out of a predecessor whose
// argument is a different value kills itself. This only arises on
// unsplit critical edges (splitting them is the other classic fix for
// the lost-copy problem), so the scenario is built by hand:
//
//	entry: x1 = 1; jump head
//	head:  x2 = φ(x1, x3); x3 = x2+1; br c -> head, exit
//	exit:  output x2            — x2 live out of head, arg x3 ≠ x2
func TestLostCopySelfKill(t *testing.T) {
	bld := ir.NewBuilder("selfkill")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	exit := bld.Fn.NewBlock("exit")
	n, x1, x2, x3, c := bld.Val("n"), bld.Val("x1"), bld.Val("x2"), bld.Val("x3"), bld.Val("c")
	one := bld.Val("one")
	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(one, 1)
	bld.Const(x1, 1)
	bld.Jump(head)
	bld.SetBlock(head)
	bld.Phi(x2, x1, x3)
	bld.Binary(ir.Add, x3, x2, one)
	bld.Binary(ir.CmpLT, c, x3, n)
	bld.Br(c, head, exit)
	bld.SetBlock(exit)
	bld.Output(x2)
	if err := ssa.Verify(bld.Fn); err != nil {
		t.Fatal(err)
	}

	an := analyze(bld.Fn, interference.Exact)
	if !an.Kills(x2, x2) {
		t.Fatal("lost-copy φ result must self-kill (paper: 'a variable is killed by itself')")
	}
	// After splitting the critical back edge the hazard disappears.
	cfg.SplitCriticalEdges(bld.Fn)
	an = analyze(bld.Fn, interference.Exact)
	if an.Kills(x2, x2) {
		t.Fatal("edge splitting must remove the lost-copy self-kill")
	}
}

// Class 3 (Fig. 6 right): two φs in different blocks with different
// arguments flowing from a common predecessor strongly interfere.
func TestClass3StrongInterference(t *testing.T) {
	bld := ir.NewBuilder("class3")
	entry := bld.Block("entry")
	mid := bld.Fn.NewBlock("mid")
	j1 := bld.Fn.NewBlock("j1")
	j2 := bld.Fn.NewBlock("j2")
	c, x1, y1, x, y := bld.Val("c"), bld.Val("x1"), bld.Val("y1"), bld.Val("x"), bld.Val("y")

	// entry -> j1 (via mid) and entry -> j1 directly; j1 -> j2 twice is
	// not expressible; instead: entry branches to mid/j1; mid jumps j1;
	// j1 branches to j2/exit-ish. Build the paper's shape: a common
	// predecessor feeding two φs in different blocks with different args.
	// Simplest faithful shape: block B is a predecessor of both J1 and J2.
	//
	//   entry: br c -> B, J1
	//   B:     jump J1?  — we need B pred of both J1 and J2.
	//
	// Use: B br -> J1, J2 ; entry jump B' paths give other preds.
	_ = mid
	bld.SetBlock(entry)
	bld.Input(c, x1, y1)
	bld.Br(c, j1, j2) // entry is a common predecessor of j1 and j2
	bld.SetBlock(j1)
	bld.Phi(x, x1)
	bld.Jump(j2)
	bld.SetBlock(j2)
	bld.Phi(y, y1, x) // from entry: y1 (≠ x1 at the shared pred entry)
	bld.Output(y)

	an := analyze(bld.Fn, interference.Exact)
	if !an.StronglyInterfere(x, y) {
		t.Fatal("φs with different args from a shared predecessor must strongly interfere (Class 3)")
	}
}

func TestClass3SameArgsNoStrongInterference(t *testing.T) {
	bld := ir.NewBuilder("class3ok")
	entry := bld.Block("entry")
	j1 := bld.Fn.NewBlock("j1")
	j2 := bld.Fn.NewBlock("j2")
	c, x1, x, y := bld.Val("c"), bld.Val("x1"), bld.Val("x"), bld.Val("y")
	bld.SetBlock(entry)
	bld.Input(c, x1)
	bld.Br(c, j1, j2)
	bld.SetBlock(j1)
	bld.Phi(x, x1)
	bld.Jump(j2)
	bld.SetBlock(j2)
	bld.Phi(y, x1, x) // same value x1 from the shared pred entry
	bld.Output(y)

	an := analyze(bld.Fn, interference.Exact)
	if an.StronglyInterfere(x, y) {
		t.Fatal("identical argument from the shared predecessor: no strong interference")
	}
}

// Class 4: two φs in the same block always strongly interfere.
func TestClass4SameBlockPhis(t *testing.T) {
	bld := ir.NewBuilder("class4")
	entry := bld.Block("entry")
	l := bld.Fn.NewBlock("l")
	r := bld.Fn.NewBlock("r")
	join := bld.Fn.NewBlock("join")
	c, a1, a2, x, y, s := bld.Val("c"), bld.Val("a1"), bld.Val("a2"), bld.Val("x"), bld.Val("y"), bld.Val("s")
	bld.SetBlock(entry)
	bld.Input(c, a1, a2)
	bld.Br(c, l, r)
	bld.SetBlock(l)
	bld.Jump(join)
	bld.SetBlock(r)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Phi(x, a1, a2)
	bld.Phi(y, a1, a2) // same arguments — still strong (Class 4)
	bld.Binary(ir.Add, s, x, y)
	bld.Output(s)

	an := analyze(bld.Fn, interference.Exact)
	if !an.StronglyInterfere(x, y) {
		t.Fatal("same-block φs must strongly interfere (Class 4)")
	}
}

func TestSameInstructionDefsStronglyInterfere(t *testing.T) {
	bld := ir.NewBuilder("multi")
	bld.Block("entry")
	a, b := bld.Val("a"), bld.Val("b")
	bld.Call("f", []ir.ValueID{a, b})
	s := bld.Val("s")
	bld.Binary(ir.Add, s, a, b)
	bld.Output(s)
	an := analyze(bld.Fn, interference.Exact)
	if !an.StronglyInterfere(a, b) {
		t.Fatal("two results of one instruction must strongly interfere")
	}
}

// Optimistic mode misses a kill when the killed variable dies within the
// defining block; pessimistic reports a kill that exact does not.
func TestOptimisticAndPessimisticModes(t *testing.T) {
	bld := ir.NewBuilder("modes")
	bld.Block("entry")
	x, y, z, w := bld.Val("x"), bld.Val("y"), bld.Val("z"), bld.Val("w")
	bld.Const(x, 1)
	bld.Const(y, 2)
	bld.Binary(ir.Add, z, x, x) // last use of x: x dead after this
	bld.Binary(ir.Add, w, z, y)
	bld.Output(w)

	exact := analyze(bld.Fn, interference.Exact)
	opt := analyze(bld.Fn, interference.Optimistic)
	pess := analyze(bld.Fn, interference.Pessimistic)

	// y kills x? x's def dominates y's def; x live after y's def (used by
	// z's def). Exact: yes. Optimistic: x not live-out of entry -> missed.
	if !exact.Kills(y, x) {
		t.Fatal("exact: y kills x")
	}
	if opt.Kills(y, x) {
		t.Fatal("optimistic must miss the kill (x dies within the block)")
	}
	if !pess.Kills(y, x) {
		t.Fatal("pessimistic: same-block defs kill")
	}
	// z kills y? y's def dominates z's def; y live after z (used by w).
	// All modes should agree here (y live-in? y defined in entry... y is
	// not live-in; pessimistic uses same-block rule).
	if !exact.Kills(z, y) || !pess.Kills(z, y) {
		t.Fatal("z kills y in exact and pessimistic modes")
	}
}

// Resource-level: merging classes detects member kills and pinned-use
// clobbers.
func TestResourceInterfere(t *testing.T) {
	bld := ir.NewBuilder("resint")
	bld.Block("entry")
	f := bld.Fn
	a, b, s := bld.Val("a"), bld.Val("b"), bld.Val("s")
	bld.Const(a, 1)
	bld.Const(b, 2)
	bld.Binary(ir.Add, s, a, b) // a and b both live here
	bld.Output(s)

	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(f, interference.Exact)
	rg := interference.NewResourceGraph(an, res)
	if !rg.Interfere(a, b) {
		t.Fatal("a and b overlap: resources interfere")
	}
	if rg.Interfere(a, a) {
		t.Fatal("a resource does not interfere with itself")
	}
	if !rg.Interfere(f.Target.R[0], f.Target.R[1]) {
		t.Fatal("distinct physical registers always interfere")
	}
}

func TestResourceKilledWithinClass(t *testing.T) {
	bld := ir.NewBuilder("killed")
	bld.Block("entry")
	f := bld.Fn
	a, b, s := bld.Val("a"), bld.Val("b"), bld.Val("s")
	bld.Const(a, 1)
	bld.Const(b, 2)
	bld.Binary(ir.Add, s, a, b)
	bld.Output(s)

	res, _ := pin.NewResources(f)
	res.Union(a, b) // force them together despite the interference
	an := analyze(f, interference.Exact)
	rg := interference.NewResourceGraph(an, res)
	killed := rg.Killed(a)
	if !killed[a] {
		t.Fatal("a must be killed within the merged resource (b's def clobbers it)")
	}
	if killed[b] {
		t.Fatal("b is the last writer; not killed")
	}
}

// A pinned use clobbers other members of the pinned resource that are
// live across the instruction.
func TestPinSiteKills(t *testing.T) {
	bld := ir.NewBuilder("pinsite")
	bld.Block("entry")
	f := bld.Fn
	r2 := f.Target.R[2]
	p, arg, d, s := bld.Val("p"), bld.Val("arg"), bld.Val("d"), bld.Val("s")
	in := bld.Input(p, arg)
	ir.PinDef(in, 0, r2) // p lives in R2
	call := bld.Call("f", []ir.ValueID{d}, arg)
	ir.PinUse(call, 0, r2) // the call wants arg in R2 — clobbers p
	bld.Binary(ir.Add, s, p, d)
	bld.Output(s)

	res, err := pin.NewResources(f)
	if err != nil {
		t.Fatal(err)
	}
	an := analyze(f, interference.Exact)
	rg := interference.NewResourceGraph(an, res)
	killed := rg.Killed(p)
	if !killed[p] {
		t.Fatal("p must be killed by the pinned use of arg in R2")
	}
}

func TestInterfereSymmetric(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		ssa.Build(f)
		an := analyze(f, interference.Exact)
		nv := f.NumValues()
		for i := 0; i < nv; i += 3 {
			for j := 0; j < nv; j += 3 {
				a, b := ir.ValueID(i), ir.ValueID(j)
				if f.IsPhys(a) || f.IsPhys(b) {
					continue
				}
				if an.Interfere(a, b) != an.Interfere(b, a) {
					t.Fatalf("seed %d: Interfere(%v,%v) asymmetric", seed, f.VStr(a), f.VStr(b))
				}
				if an.StronglyInterfere(a, b) != an.StronglyInterfere(b, a) {
					t.Fatalf("seed %d: StronglyInterfere(%v,%v) asymmetric", seed, f.VStr(a), f.VStr(b))
				}
			}
		}
	}
}
