// Package cachestore is the persistence layer under laocd's caches: an
// append-only log of checksummed records in numbered segment files,
// written behind the request path and scanned once at startup to warm
// the in-memory caches.
//
// The design leans on two properties of the service above it:
//
//   - Records are content-addressed and immutable. A record is only
//     ever superseded by an identical one (same key ⇒ same bytes, the
//     pipeline is deterministic), so "last record wins" on scan needs
//     no sequence numbers, and a crash between duplicate writes is
//     harmless.
//   - The store is a cache, not a database. Losing a record costs a
//     recompilation; serving a corrupt one costs correctness. So every
//     read path is paranoid (per-record FNV-64a checksums, framing
//     validation, hostile-length guards) and every failure mode
//     degrades to "skip it, count it": torn tails are truncated,
//     corrupt records are skipped and resynced past, and nothing that
//     fails validation is ever yielded to a caller.
//
// Writes go through a single background goroutine (write-behind): Put
// never blocks the request path on the disk — a full queue drops the
// record and counts the drop instead. The same goroutine runs
// compaction when the log exceeds its size cap: live records (an
// LRU-liveness callback decides) are rewritten into a fresh segment,
// the rename is atomic, and a crash at any point leaves either the old
// segments or a complete new one — never a half state the scanner
// would trust. Leftover .tmp segments from a killed compaction are
// deleted at Open.
package cachestore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind tags what a record payload is; the warm scanner dispatches on
// it.
type Kind byte

const (
	// KindResult is a compiled translation: payload = rendered LAI text,
	// with the result counters riding in the record header.
	KindResult Kind = 1
	// KindDecode is an interned decode master: payload = the function's
	// b1 wire document.
	KindDecode Kind = 2
)

// Record is one persisted cache entry.
type Record struct {
	Kind    Kind
	Key     uint64
	Payload []byte
	// Name/Moves/Instrs/FellBack/Degraded are the result counters a
	// KindResult response carries; zero for KindDecode.
	Name     string
	Moves    int
	Instrs   int
	FellBack bool
	Degraded bool
}

// FsyncPolicy says when the writer calls File.Sync.
type FsyncPolicy int

const (
	// FsyncNever leaves durability to the OS (default; a crash loses at
	// most the page cache, which for a cache is fine).
	FsyncNever FsyncPolicy = iota
	// FsyncAlways syncs after every appended record.
	FsyncAlways
	// FsyncInterval syncs at most once per Options.FsyncEvery.
	FsyncInterval
)

// ParseFsyncPolicy maps the -cache-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "never", "":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return FsyncNever, fmt.Errorf("cachestore: unknown fsync policy %q (want never, interval or always)", s)
}

// Options configures Open.
type Options struct {
	// MaxBytes caps the on-disk size; exceeding it triggers a
	// compaction. 0 means 64 MiB; negative disables compaction.
	MaxBytes int64
	// Fsync is the durability policy; FsyncEvery is the FsyncInterval
	// period (default 100ms).
	Fsync      FsyncPolicy
	FsyncEvery time.Duration
	// Live reports whether a record is still worth keeping at
	// compaction time — the server wires it to the in-memory LRUs so
	// the disk follows their liveness. nil keeps everything.
	Live func(Kind, uint64) bool
	// QueueDepth bounds the write-behind queue (default 1024); a full
	// queue drops the append and counts it.
	QueueDepth int
}

// Stats is a snapshot of the store's counters; all are monotonic
// except SizeBytes/Segments.
type Stats struct {
	Appends        int64 // records written by the write-behind goroutine
	AppendBytes    int64 // encoded bytes appended
	Dropped        int64 // appends dropped (full queue, closed store, write error)
	Fsyncs         int64
	ScanRecords    int64 // valid records yielded by Scan
	CorruptDropped int64 // records skipped for checksum/framing violations
	TruncatedBytes int64 // torn-tail bytes truncated during recovery
	Compactions    int64
	CompactDropped int64 // dead/stale records dropped by compaction
	SizeBytes      int64 // current on-disk size
	Segments       int64 // current segment count
}

// Store is an open cache store. Open → Scan (warm start) → Put... →
// Close. Put/Flush/Stats are safe for concurrent use; Scan reads the
// segment files directly and must not race compaction — call it before
// the first Put.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards the file state below
	active   *os.File
	activeN  int   // active segment number
	size     int64 // total on-disk bytes across segments
	lastSync time.Time

	queue  chan wreq
	quit   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	appends        atomic.Int64
	appendBytes    atomic.Int64
	dropped        atomic.Int64
	fsyncs         atomic.Int64
	scanRecords    atomic.Int64
	corruptDropped atomic.Int64
	truncatedBytes atomic.Int64
	compactions    atomic.Int64
	compactDropped atomic.Int64
}

// wreq is one write-behind command: a record to append, or a flush
// barrier when rec is nil.
type wreq struct {
	rec   *Record
	flush chan struct{}
}

// Record frame: u32 magic · u32 bodyLen · body · u64 FNV-64a(body).
// Body: u8 kind · u8 flags · u16 0 · u32 moves · u32 instrs · u64 key
// · u32 nameLen · name · u32 payloadLen · payload.
const (
	recMagic     = uint32(0x4C414F43) // "LAOC" little-endian
	recBodyFixed = 28                 // body bytes besides name/payload
	recMinFrame  = 4 + 4 + recBodyFixed + 8
	segPattern   = "seg-%08d.laoc"
)

// Open opens (creating if needed) the store in dir and runs recovery:
// leftover compaction temporaries are removed and a torn tail on the
// newest segment is truncated away. New appends go to a fresh segment,
// so recovery never rewrites bytes a previous process considered
// durable (beyond the torn-tail truncation itself).
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxBytes == 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 100 * time.Millisecond
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		queue: make(chan wreq, opts.QueueDepth),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	segs, err := s.recover()
	if err != nil {
		return nil, err
	}
	next := 0
	if n := len(segs); n > 0 {
		next = segs[n-1] + 1
	}
	f, err := os.OpenFile(s.segPath(next), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	s.active, s.activeN = f, next
	go s.writer()
	return s, nil
}

func (s *Store) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf(segPattern, n))
}

// segments lists the existing segment numbers in ascending order.
func (s *Store) segments() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	var out []int
	for _, e := range ents {
		var n int
		// Sscanf tolerates trailing input, so require an exact
		// re-rendering match — "seg-0000.laoc.tmp" must not count.
		if _, err := fmt.Sscanf(e.Name(), segPattern, &n); err == nil && e.Name() == fmt.Sprintf(segPattern, n) {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out, nil
}

// recover deletes compaction temporaries, truncates a torn tail off
// the newest segment, and computes the current on-disk size.
func (s *Store) recover() ([]int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	segs, err := s.segments()
	if err != nil {
		return nil, err
	}
	for i, n := range segs {
		path := s.segPath(n)
		fi, err := os.Stat(path)
		if err != nil {
			return nil, fmt.Errorf("cachestore: %w", err)
		}
		size := fi.Size()
		if i == len(segs)-1 {
			// The newest segment is the only one a crash can have left
			// mid-append: find the last well-framed record boundary and
			// drop everything after it.
			valid, err := validPrefix(path)
			if err != nil {
				return nil, err
			}
			if valid < size {
				if err := os.Truncate(path, valid); err != nil {
					return nil, fmt.Errorf("cachestore: truncate torn tail: %w", err)
				}
				s.truncatedBytes.Add(size - valid)
				size = valid
			}
		}
		s.size += size
	}
	return segs, nil
}

// validPrefix returns the offset just past the last well-framed record
// in the segment — the truncation point for torn-tail recovery. Damage
// in the middle is resynced past, not truncated (a bit flip before
// intact records must not discard them; Scan skips and counts it).
// Checksums are not verified here — a flipped payload bit inside a
// complete record is Scan's business.
func validPrefix(path string) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("cachestore: %w", err)
	}
	off, end := int64(0), int64(0)
	for off < int64(len(data)) {
		n := frameLen(data[off:])
		if n <= 0 {
			off = resync(data, off+1)
			continue
		}
		off += n
		end = off
	}
	return end, nil
}

// frameLen returns the total length of the record frame at the start
// of data, or 0 if data does not begin with a complete well-framed
// record (the body's internal length fields must agree with bodyLen).
func frameLen(data []byte) int64 {
	if len(data) < recMinFrame {
		return 0
	}
	if binary.LittleEndian.Uint32(data) != recMagic {
		return 0
	}
	bodyLen := int64(binary.LittleEndian.Uint32(data[4:]))
	total := 4 + 4 + bodyLen + 8
	if bodyLen < recBodyFixed || total > int64(len(data)) {
		return 0
	}
	body := data[8 : 8+bodyLen]
	nameLen := int64(binary.LittleEndian.Uint32(body[20:]))
	if 24+nameLen+4 > bodyLen {
		return 0
	}
	payloadLen := int64(binary.LittleEndian.Uint32(body[24+nameLen:]))
	if recBodyFixed+nameLen+payloadLen != bodyLen {
		return 0
	}
	return total
}

// encodeRecord appends rec's frame to dst.
func encodeRecord(dst []byte, rec *Record) []byte {
	bodyLen := recBodyFixed + len(rec.Name) + len(rec.Payload)
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, recMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
	var flags byte
	if rec.FellBack {
		flags |= 1
	}
	if rec.Degraded {
		flags |= 2
	}
	dst = append(dst, byte(rec.Kind), flags, 0, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.Moves))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(rec.Instrs))
	dst = binary.LittleEndian.AppendUint64(dst, rec.Key)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Name)))
	dst = append(dst, rec.Name...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Payload)))
	dst = append(dst, rec.Payload...)
	h := fnv.New64a()
	h.Write(dst[start+8 : start+8+bodyLen])
	return binary.LittleEndian.AppendUint64(dst, h.Sum64())
}

// decodeRecord parses the frame at the start of data (already framed
// by frameLen, which returned total) and verifies its checksum.
func decodeRecord(data []byte, total int64) (*Record, bool) {
	body := data[8 : total-8]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(data[total-8:total]) {
		return nil, false
	}
	kind := Kind(body[0])
	if kind != KindResult && kind != KindDecode {
		return nil, false
	}
	flags := body[1]
	nameLen := int64(binary.LittleEndian.Uint32(body[20:]))
	payloadLen := int64(binary.LittleEndian.Uint32(body[24+nameLen:]))
	return &Record{
		Kind:     kind,
		Key:      binary.LittleEndian.Uint64(body[12:]),
		Payload:  append([]byte(nil), body[28+nameLen:28+nameLen+payloadLen]...),
		Name:     string(body[24 : 24+nameLen]),
		Moves:    int(binary.LittleEndian.Uint32(body[4:])),
		Instrs:   int(binary.LittleEndian.Uint32(body[8:])),
		FellBack: flags&1 != 0,
		Degraded: flags&2 != 0,
	}, true
}

// Scan replays every valid record in segment order, oldest first, and
// calls fn for each; fn returning false stops the scan. Records that
// fail checksum or framing are skipped, counted, and resynced past by
// searching for the next frame magic. Scan is the warm-start read —
// call it after Open and before the first Put.
func (s *Store) Scan(fn func(*Record) bool) error {
	return s.scan(fn, true)
}

func (s *Store) scan(fn func(*Record) bool, count bool) error {
	segs, err := s.segments()
	if err != nil {
		return err
	}
	for _, n := range segs {
		data, err := os.ReadFile(s.segPath(n))
		if err != nil {
			return fmt.Errorf("cachestore: %w", err)
		}
		off := int64(0)
		for off < int64(len(data)) {
			total := frameLen(data[off:])
			if total <= 0 {
				// Broken framing: resync by scanning for the next magic.
				if count {
					s.corruptDropped.Add(1)
				}
				off = resync(data, off+1)
				continue
			}
			rec, ok := decodeRecord(data[off:], total)
			off += total
			if !ok {
				if count {
					s.corruptDropped.Add(1)
				}
				continue
			}
			if count {
				s.scanRecords.Add(1)
			}
			if !fn(rec) {
				return nil
			}
		}
	}
	return nil
}

// resync returns the offset of the next plausible frame start at or
// after from, or the end of data.
func resync(data []byte, from int64) int64 {
	for off := from; off+4 <= int64(len(data)); off++ {
		if binary.LittleEndian.Uint32(data[off:]) == recMagic && frameLen(data[off:]) > 0 {
			return off
		}
	}
	return int64(len(data))
}

// Put hands rec to the write-behind goroutine. It never blocks on the
// disk: when the queue is full the record is dropped and counted —
// the store is a cache, and backpressure belongs to the compile path,
// not the persistence path.
func (s *Store) Put(rec *Record) {
	if s.closed.Load() {
		s.dropped.Add(1)
		return
	}
	select {
	case s.queue <- wreq{rec: rec}:
	default:
		s.dropped.Add(1)
	}
}

// Flush blocks until every Put accepted so far has hit the file and
// been synced (regardless of policy) — the test and shutdown barrier.
func (s *Store) Flush() {
	ch := make(chan struct{})
	select {
	case s.queue <- wreq{flush: ch}:
	case <-s.done:
		return
	}
	select {
	case <-ch:
	case <-s.done:
	}
}

// Close flushes, stops the writer and closes the active segment. The
// store must not be used afterwards.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.Flush()
	close(s.quit)
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		s.active.Sync()
		err := s.active.Close()
		s.active = nil
		return err
	}
	return nil
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	size := s.size
	s.mu.Unlock()
	segs, _ := s.segments()
	return Stats{
		Appends:        s.appends.Load(),
		AppendBytes:    s.appendBytes.Load(),
		Dropped:        s.dropped.Load(),
		Fsyncs:         s.fsyncs.Load(),
		ScanRecords:    s.scanRecords.Load(),
		CorruptDropped: s.corruptDropped.Load(),
		TruncatedBytes: s.truncatedBytes.Load(),
		Compactions:    s.compactions.Load(),
		CompactDropped: s.compactDropped.Load(),
		SizeBytes:      size,
		Segments:       int64(len(segs)),
	}
}

// --- the write-behind goroutine ------------------------------------

func (s *Store) writer() {
	defer close(s.done)
	for {
		select {
		case req := <-s.queue:
			s.handle(req)
		case <-s.quit:
			// Drain whatever was enqueued before quit, then stop.
			for {
				select {
				case req := <-s.queue:
					s.handle(req)
				default:
					return
				}
			}
		}
	}
}

func (s *Store) handle(req wreq) {
	if req.flush != nil {
		s.mu.Lock()
		if s.active != nil {
			s.active.Sync()
			s.fsyncs.Add(1)
		}
		s.mu.Unlock()
		close(req.flush)
		return
	}
	s.append(req.rec)
}

// append encodes and writes one record, applies the fsync policy, and
// triggers compaction past the size cap. Runs only on the writer
// goroutine.
func (s *Store) append(rec *Record) {
	frame := encodeRecord(nil, rec)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		s.dropped.Add(1)
		return
	}
	if _, err := s.active.Write(frame); err != nil {
		// A failed write may have left a torn tail; the next Open's
		// recovery truncates it. Nothing to do here but count.
		s.dropped.Add(1)
		return
	}
	s.size += int64(len(frame))
	s.appends.Add(1)
	s.appendBytes.Add(int64(len(frame)))
	switch s.opts.Fsync {
	case FsyncAlways:
		s.active.Sync()
		s.fsyncs.Add(1)
	case FsyncInterval:
		if now := time.Now(); now.Sub(s.lastSync) >= s.opts.FsyncEvery {
			s.active.Sync()
			s.fsyncs.Add(1)
			s.lastSync = now
		}
	}
	if s.opts.MaxBytes > 0 && s.size > s.opts.MaxBytes {
		s.compactLocked()
	}
}

// compactLocked rewrites the live records into a fresh segment and
// deletes the old ones; the caller (append) holds s.mu, and the lock
// is released around the read-back since only the writer goroutine
// touches the files. Crash-safety: the new segment is written under a
// .tmp name and renamed into place only after a successful sync, so a
// kill mid-compaction leaves the old segments intact plus a .tmp the
// next Open deletes; a kill after the rename but before the deletes
// leaves duplicate records, which the last-record-wins scan absorbs.
func (s *Store) compactLocked() {
	s.compactions.Add(1)
	s.active.Sync()
	s.active.Close()
	s.active = nil

	type slot struct{ rec *Record }
	latest := make(map[[2]uint64]*slot)
	var order []*slot
	s.mu.Unlock()
	s.scan(func(rec *Record) bool {
		k := [2]uint64{uint64(rec.Kind), rec.Key}
		if sl, ok := latest[k]; ok {
			sl.rec = rec // later record wins; content-equal by contract
			s.compactDropped.Add(1)
			return true
		}
		sl := &slot{rec: rec}
		latest[k] = sl
		order = append(order, sl)
		return true
	}, false)
	s.mu.Lock()

	newN := s.activeN + 1
	abort := func(f *os.File, tmp string) {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
		s.reopenActive(s.activeN + 2)
	}
	tmp := s.segPath(newN) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o666)
	if err != nil {
		abort(nil, tmp)
		return
	}
	var buf []byte
	kept := int64(0)
	for _, sl := range order {
		if s.opts.Live != nil && !s.opts.Live(sl.rec.Kind, sl.rec.Key) {
			s.compactDropped.Add(1)
			continue
		}
		buf = encodeRecord(buf[:0], sl.rec)
		if _, err := f.Write(buf); err != nil {
			abort(f, tmp)
			return
		}
		kept += int64(len(buf))
	}
	if f.Sync() != nil {
		abort(f, tmp)
		return
	}
	f.Close()
	s.fsyncs.Add(1)
	old, _ := s.segments()
	if err := os.Rename(tmp, s.segPath(newN)); err != nil {
		os.Remove(tmp)
		s.reopenActive(s.activeN + 2)
		return
	}
	for _, n := range old {
		os.Remove(s.segPath(n))
	}
	s.size = kept
	s.reopenActive(newN + 1)
}

// reopenActive opens a fresh active segment numbered n; on failure the
// store degrades to memory-only (appends become drops).
func (s *Store) reopenActive(n int) {
	f, err := os.OpenFile(s.segPath(n), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		s.active = nil
		return
	}
	s.active, s.activeN = f, n
}
