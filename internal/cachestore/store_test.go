package cachestore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func rec(kind Kind, key uint64, payload string) *Record {
	return &Record{Kind: kind, Key: key, Payload: []byte(payload),
		Name: fmt.Sprintf("f%d", key), Moves: int(key % 7), Instrs: int(key % 31), FellBack: key%2 == 0}
}

func collect(t *testing.T, s *Store) []*Record {
	t.Helper()
	var out []*Record
	if err := s.Scan(func(r *Record) bool { out = append(out, r); return true }); err != nil {
		t.Fatal(err)
	}
	return out
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRoundTrip pins the record frame: both kinds, all counters, and
// payload bytes survive a write-reopen-scan cycle.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncAlways})
	want := []*Record{
		rec(KindResult, 1, "code-one"),
		rec(KindDecode, 2, "b1-doc-bytes"),
		{Kind: KindResult, Key: 3, Payload: []byte("deg"), Name: "g", Degraded: true},
		{Kind: KindDecode, Key: 4, Payload: nil, Name: ""},
	}
	for _, r := range want {
		s.Put(r)
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	got := collect(t, s2)
	if len(got) != len(want) {
		t.Fatalf("scan yielded %d records, want %d", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Kind != w.Kind || g.Key != w.Key || !bytes.Equal(g.Payload, w.Payload) ||
			g.Name != w.Name || g.Moves != w.Moves || g.Instrs != w.Instrs ||
			g.FellBack != w.FellBack || g.Degraded != w.Degraded {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, g, w)
		}
	}
	st := s2.Stats()
	if st.ScanRecords != int64(len(want)) || st.CorruptDropped != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("unexpected stats after clean scan: %+v", st)
	}
}

// activeSegment returns the path of the single highest-numbered
// segment with content.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".laoc" {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

// TestTornTailRecovery cuts the newest segment at every possible byte
// length and reopens: recovery must truncate to the last whole record,
// keep everything before it, and leave the store appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncAlways})
	s.Put(rec(KindResult, 1, "first"))
	s.Put(rec(KindDecode, 2, "second"))
	s.Flush()
	s.Close()
	seg := lastSegment(t, dir)
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	oneRec := int64(0)
	{
		n := frameLen(whole)
		if n <= 0 {
			t.Fatal("segment does not start with a valid frame")
		}
		oneRec = n
	}

	for cut := len(whole) - 1; cut > 0; cut -= 7 {
		dir2 := t.TempDir()
		seg2 := filepath.Join(dir2, filepath.Base(seg))
		if err := os.WriteFile(seg2, whole[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		s2 := openT(t, dir2, Options{Fsync: FsyncAlways})
		got := collect(t, s2)
		wantRecs := 0
		if int64(cut) >= oneRec {
			wantRecs = 1
		}
		if int64(cut) == int64(len(whole)) {
			wantRecs = 2
		}
		if len(got) != wantRecs {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), wantRecs)
		}
		if st := s2.Stats(); st.TruncatedBytes == 0 {
			t.Fatalf("cut at %d: no torn-tail bytes counted", cut)
		}
		// The store must still append cleanly after recovery.
		s2.Put(rec(KindResult, 99, "after-recovery"))
		s2.Flush()
		got = collect(t, s2)
		if len(got) != wantRecs+1 || got[len(got)-1].Key != 99 {
			t.Fatalf("cut at %d: append after recovery not visible (got %d records)", cut, len(got))
		}
		s2.Close()
	}
}

// TestBitFlipSkipped flips one byte in every position of a
// mid-sequence record: scan must drop exactly the damaged record (or
// resync past worse damage), never yield wrong bytes, and count the
// corruption. This is the faultinject.InjectCachePoison analogue at
// the persistence layer.
func TestBitFlipSkipped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncAlways})
	s.Put(rec(KindResult, 1, "aaaa"))
	s.Put(rec(KindResult, 2, "bbbb"))
	s.Put(rec(KindResult, 3, "cccc"))
	s.Flush()
	s.Close()
	seg := lastSegment(t, dir)
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	first := frameLen(whole)
	second := frameLen(whole[first:])
	if first <= 0 || second <= 0 {
		t.Fatal("bad segment framing")
	}

	for off := first; off < first+second; off++ {
		data := append([]byte{}, whole...)
		data[off] ^= 0x01
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, filepath.Base(seg)), data, 0o666); err != nil {
			t.Fatal(err)
		}
		s2 := openT(t, dir2, Options{})
		got := collect(t, s2)
		// Record 2 must be gone or bit-exact impossible — and records 1
		// and 3 must survive whenever framing allows resync. Record 1 is
		// before the damage: always present.
		if len(got) == 0 || got[0].Key != 1 || string(got[0].Payload) != "aaaa" {
			t.Fatalf("flip at %d: record before the damage was lost", off)
		}
		for _, g := range got {
			if g.Key == 2 && string(g.Payload) != "bbbb" {
				t.Fatalf("flip at %d: damaged record served with wrong bytes", off)
			}
			if g.Key == 2 {
				// Served intact: the flip must have been absorbed by a
				// non-checksummed region — there is none (every body and
				// checksum byte is covered), except a flip inside the
				// frame header that still framed identically, which the
				// checksum over the body would catch. Reaching here with
				// intact bytes is only possible if the flip landed in the
				// checksum... which makes verification fail. So: never.
				t.Fatalf("flip at %d: damaged record decoded successfully", off)
			}
		}
		st := s2.Stats()
		if st.CorruptDropped == 0 {
			t.Fatalf("flip at %d: corruption not counted (got %d records)", off, len(got))
		}
		s2.Close()
	}
}

// TestCompaction fills the store past its cap with half-dead keys and
// checks that compaction drops the dead ones, rewrites the live ones,
// shrinks the disk, and survives a reopen.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	live := func(k Kind, key uint64) bool { return key%2 == 0 }
	s := openT(t, dir, Options{MaxBytes: 4096, Live: live, Fsync: FsyncAlways})
	payload := string(bytes.Repeat([]byte("x"), 128))
	for i := uint64(0); i < 100; i++ {
		s.Put(rec(KindResult, i, payload))
		s.Flush() // serialize appends so the compaction point is deterministic
	}
	s.Flush()
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.SizeBytes > 3*4096 {
		t.Fatalf("disk did not shrink: %+v", st)
	}
	s.Close()

	s2 := openT(t, dir, Options{})
	got := collect(t, s2)
	seen := map[uint64]int{}
	for _, g := range got {
		seen[g.Key]++
		if g.Key%2 == 1 && g.Key < 90 {
			// Odd keys written well before the last compaction must have
			// been dropped as dead. (The most recent tail may postdate
			// the final compaction.)
			t.Fatalf("dead key %d survived compaction", g.Key)
		}
		if seen[g.Key] > 1 {
			t.Fatalf("key %d appears twice after compaction", g.Key)
		}
	}
	if len(got) == 0 {
		t.Fatal("compaction dropped everything")
	}
}

// TestCompactionMidKill simulates dying between writing the compacted
// temporary and the rename: the next Open must ignore and remove the
// .tmp and serve the old segments.
func TestCompactionMidKill(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncAlways})
	s.Put(rec(KindResult, 1, "keep-me"))
	s.Flush()
	s.Close()

	// A stray half-written compaction temporary.
	tmp := filepath.Join(dir, "seg-00000042.laoc.tmp")
	if err := os.WriteFile(tmp, []byte("half-written-garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	got := collect(t, s2)
	if len(got) != 1 || got[0].Key != 1 || string(got[0].Payload) != "keep-me" {
		t.Fatalf("old segments not served after mid-kill: %+v", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("compaction temporary not removed at Open")
	}
	// And the tmp must never be mistaken for a segment.
	if st := s2.Stats(); st.CorruptDropped != 0 {
		t.Fatalf("tmp leaked into the scan: %+v", st)
	}
}

// TestCompactionRenamedNotDeleted simulates dying after the rename but
// before the old-segment deletes: the scan sees duplicates and
// last-record-wins absorbs them.
func TestCompactionRenamedNotDeleted(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{Fsync: FsyncAlways})
	s.Put(rec(KindResult, 7, "same-bytes"))
	s.Flush()
	s.Close()
	// Duplicate the segment under a higher number, as an interrupted
	// compaction would leave it.
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "seg-00000050.laoc"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	keys := map[uint64]int{}
	recs := collect(t, s2)
	for _, g := range recs {
		keys[g.Key]++
	}
	if keys[7] != 2 {
		t.Fatalf("expected the duplicate to be scanned twice (last wins at the cache layer), got %+v", keys)
	}
	for _, g := range recs {
		if string(g.Payload) != "same-bytes" {
			t.Fatal("duplicate record differs — content-addressing violated")
		}
	}
}

// TestFsyncPolicies exercises all three policies end to end (the
// syscalls, not durability itself) and pins the drop-on-full-queue
// write-behind contract.
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		dir := t.TempDir()
		s := openT(t, dir, Options{Fsync: p, FsyncEvery: 1})
		for i := uint64(0); i < 10; i++ {
			s.Put(rec(KindResult, i, "p"))
		}
		s.Flush()
		st := s.Stats()
		if st.Appends != 10 {
			t.Fatalf("policy %v: %d appends, want 10", p, st.Appends)
		}
		if p == FsyncAlways && st.Fsyncs < 10 {
			t.Fatalf("policy always: only %d fsyncs", st.Fsyncs)
		}
		s.Close()
	}

	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("ParseFsyncPolicy accepted garbage")
	}
	for s, want := range map[string]FsyncPolicy{"": FsyncNever, "never": FsyncNever, "interval": FsyncInterval, "always": FsyncAlways} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", s, got, err)
		}
	}
}

// TestPutAfterClose must not panic or write.
func TestPutAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	s.Put(rec(KindResult, 1, "x"))
	s.Flush()
	s.Close()
	s.Put(rec(KindResult, 2, "y"))
	s.Flush() // must not deadlock
	if st := s.Stats(); st.Dropped == 0 {
		t.Fatal("post-close Put not counted as dropped")
	}
}
