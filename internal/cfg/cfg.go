// Package cfg provides control-flow-graph analyses over ir.Func: block
// orderings, dominator trees (Cooper–Harvey–Kennedy), dominance
// frontiers, loop nesting depth and critical-edge splitting. These are
// the substrate every SSA phase in this repository builds on.
package cfg

import "outofssa/internal/ir"

// Postorder returns the blocks reachable from entry in postorder of a
// depth-first search that visits successors left to right.
func Postorder(f *ir.Func) []*ir.Block {
	seen := make([]bool, f.NumBlocks())
	var order []*ir.Block
	var walk func(*ir.Block)
	walk = func(b *ir.Block) {
		seen[b.ID] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				walk(f.Block(s))
			}
		}
		order = append(order, b)
	}
	walk(f.Entry())
	return order
}

// ReversePostorder returns the reverse of Postorder — a topological-ish
// order in which forward dataflow converges quickly.
func ReversePostorder(f *ir.Func) []*ir.Block {
	po := Postorder(f)
	for i, j := 0, len(po)-1; i < j; i, j = i+1, j-1 {
		po[i], po[j] = po[j], po[i]
	}
	return po
}

// Reachable returns a dense bitmap of blocks reachable from entry.
func Reachable(f *ir.Func) []bool {
	seen := make([]bool, f.NumBlocks())
	for _, b := range Postorder(f) {
		seen[b.ID] = true
	}
	return seen
}

// DomTree is the result of dominator analysis.
type DomTree struct {
	fn *ir.Func
	// Idom[b.ID] is the immediate dominator of b, nil for the entry and
	// for unreachable blocks.
	Idom []*ir.Block
	// Children[b.ID] lists the dominator-tree children of b in block ID
	// order (deterministic).
	Children [][]*ir.Block
	// rpoNum[b.ID] is the reverse-postorder number used for O(1)-ish
	// dominance queries via the pre/post numbering below.
	pre, post []int
}

// Dominators computes the dominator tree of f using the Cooper, Harvey
// and Kennedy iterative algorithm ("A Simple, Fast Dominance Algorithm").
func Dominators(f *ir.Func) *DomTree {
	rpo := ReversePostorder(f)
	rpoNum := make([]int, f.NumBlocks())
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b.ID] = i
	}

	idom := make([]*ir.Block, f.NumBlocks())
	entry := f.Entry()
	idom[entry.ID] = entry // sentinel: entry "dominated by itself" during iteration

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for rpoNum[a.ID] > rpoNum[b.ID] {
				a = idom[a.ID]
			}
			for rpoNum[b.ID] > rpoNum[a.ID] {
				b = idom[b.ID]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *ir.Block
			for _, pid := range b.Preds() {
				p := f.Block(pid)
				if rpoNum[pid] < 0 || idom[pid] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	idom[entry.ID] = nil

	t := &DomTree{fn: f, Idom: idom}
	t.Children = make([][]*ir.Block, f.NumBlocks())
	for _, b := range rpo { // rpo order; children end up ordered by rpo
		if p := idom[b.ID]; p != nil {
			t.Children[p.ID] = append(t.Children[p.ID], b)
		}
	}

	// Pre/post numbering of the dominator tree for O(1) Dominates.
	t.pre = make([]int, f.NumBlocks())
	t.post = make([]int, f.NumBlocks())
	for i := range t.pre {
		t.pre[i] = -1
	}
	clock := 0
	var number func(*ir.Block)
	number = func(b *ir.Block) {
		t.pre[b.ID] = clock
		clock++
		for _, c := range t.Children[b.ID] {
			number(c)
		}
		t.post[b.ID] = clock
		clock++
	}
	number(entry)
	return t
}

// PreNum returns the dominator-tree preorder number of b, or -1 if b is
// unreachable from the entry. Sorting definition sites by PreNum
// linearizes the dominator tree so that every block's dominance subtree
// is a contiguous interval — the property behind the interference
// engine's stack sweep.
func (t *DomTree) PreNum(b *ir.Block) int { return t.pre[b.ID] }

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	if t.pre[a.ID] < 0 || t.pre[b.ID] < 0 {
		return false
	}
	return t.pre[a.ID] <= t.pre[b.ID] && t.post[b.ID] <= t.post[a.ID]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// DominanceFrontiers computes DF(b) for every block using the
// Cooper–Harvey–Kennedy per-join formulation. The inner slices are
// deduplicated and ordered by block ID.
func DominanceFrontiers(f *ir.Func, t *DomTree) [][]*ir.Block {
	df := make([][]*ir.Block, f.NumBlocks())
	inDF := make([]map[ir.BlockID]bool, f.NumBlocks())
	add := func(b, frontier *ir.Block) {
		if inDF[b.ID] == nil {
			inDF[b.ID] = make(map[ir.BlockID]bool)
		}
		if !inDF[b.ID][frontier.ID] {
			inDF[b.ID][frontier.ID] = true
			df[b.ID] = append(df[b.ID], frontier)
		}
	}
	for _, b := range ReversePostorder(f) {
		if b.NumPreds() < 2 {
			continue
		}
		for _, pid := range b.Preds() {
			if t.pre[pid] < 0 {
				continue
			}
			for runner := f.Block(pid); runner != nil && runner != t.Idom[b.ID]; runner = t.Idom[runner.ID] {
				add(runner, b)
			}
		}
	}
	for _, l := range df {
		sortBlocksByID(l)
	}
	return df
}

func sortBlocksByID(l []*ir.Block) {
	for i := 1; i < len(l); i++ {
		for j := i; j > 0 && l[j].ID < l[j-1].ID; j-- {
			l[j], l[j-1] = l[j-1], l[j]
		}
	}
}
