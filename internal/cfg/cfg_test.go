package cfg_test

import (
	"testing"

	"outofssa/internal/cfg"
	"outofssa/internal/ir"
	"outofssa/internal/testprog"
)

func blockByName(f *ir.Func, name string) *ir.Block {
	for _, b := range f.Blocks() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

func TestDominatorsDiamond(t *testing.T) {
	f := testprog.Diamond()
	dom := cfg.Dominators(f)
	entry := blockByName(f, "entry")
	left := blockByName(f, "left")
	right := blockByName(f, "right")
	join := blockByName(f, "join")

	if dom.Idom[entry.ID] != nil {
		t.Error("entry should have no idom")
	}
	for _, b := range []*ir.Block{left, right, join} {
		if dom.Idom[b.ID] != entry {
			t.Errorf("idom(%v) = %v, want entry", b, dom.Idom[b.ID])
		}
	}
	if !dom.Dominates(entry, join) || dom.Dominates(left, join) || dom.Dominates(join, left) {
		t.Error("dominance queries wrong on diamond")
	}
	if !dom.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
	if dom.StrictlyDominates(join, join) {
		t.Error("strict dominance must be irreflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := testprog.Loop()
	dom := cfg.Dominators(f)
	head := blockByName(f, "head")
	body := blockByName(f, "body")
	exit := blockByName(f, "exit")
	if dom.Idom[body.ID] != head || dom.Idom[exit.ID] != head {
		t.Error("loop idoms wrong")
	}
	if !dom.Dominates(head, body) || dom.Dominates(body, exit) {
		t.Error("loop dominance queries wrong")
	}
}

// Reference slow dominance: a dominates b iff removing a makes b
// unreachable from entry (for a != entry).
func slowDominates(f *ir.Func, a, b *ir.Block) bool {
	if a == b {
		return true
	}
	seen := make(map[*ir.Block]bool)
	var walk func(*ir.Block) bool
	walk = func(x *ir.Block) bool {
		if x == a {
			return false
		}
		if x == b {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, sid := range x.Succs() {
			if walk(f.Block(sid)) {
				return true
			}
		}
		return false
	}
	return !walk(f.Entry())
}

func TestDominatorsAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		dom := cfg.Dominators(f)
		po := cfg.Postorder(f)
		for _, a := range po {
			for _, b := range po {
				want := slowDominates(f, a, b)
				got := dom.Dominates(a, b)
				if got != want {
					t.Fatalf("seed %d: Dominates(%v,%v) = %v, want %v", seed, a, b, got, want)
				}
			}
		}
	}
}

func TestDominanceFrontierDiamond(t *testing.T) {
	f := testprog.Diamond()
	dom := cfg.Dominators(f)
	df := cfg.DominanceFrontiers(f, dom)
	left := blockByName(f, "left")
	right := blockByName(f, "right")
	join := blockByName(f, "join")
	for _, b := range []*ir.Block{left, right} {
		if len(df[b.ID]) != 1 || df[b.ID][0] != join {
			t.Errorf("DF(%v) = %v, want [join]", b, df[b.ID])
		}
	}
	if len(df[join.ID]) != 0 {
		t.Errorf("DF(join) = %v, want empty", df[join.ID])
	}
}

func TestDominanceFrontierLoop(t *testing.T) {
	f := testprog.Loop()
	dom := cfg.Dominators(f)
	df := cfg.DominanceFrontiers(f, dom)
	head := blockByName(f, "head")
	body := blockByName(f, "body")
	// body's frontier is head (back edge); head's frontier is head itself.
	if len(df[body.ID]) != 1 || df[body.ID][0] != head {
		t.Errorf("DF(body) = %v, want [head]", df[body.ID])
	}
	found := false
	for _, b := range df[head.ID] {
		if b == head {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(head) = %v, should contain head", df[head.ID])
	}
}

func TestLoopDepth(t *testing.T) {
	f := testprog.NestedLoops()
	cfg.ComputeLoopDepth(f)
	want := map[string]int{
		"entry": 0, "ohead": 1, "ihead": 1, "ibody": 2, "then": 2,
		"els": 2, "ijoin": 2, "ilatch": 2, "olatch": 1, "exit": 0,
	}
	for name, d := range want {
		b := blockByName(f, name)
		if b.LoopDepth != d {
			t.Errorf("depth(%s) = %d, want %d", name, b.LoopDepth, d)
		}
	}
}

func TestSplitCriticalEdges(t *testing.T) {
	// head -> body/exit where head has 2 succs; in Loop, body and exit each
	// have 1 pred... build a real critical edge: br to a join with 2 preds.
	bld := ir.NewBuilder("crit")
	entry := bld.Block("entry")
	mid := bld.Fn.NewBlock("mid")
	join := bld.Fn.NewBlock("join")
	c := bld.Val("c")
	bld.SetBlock(entry)
	bld.Input(c)
	bld.Br(c, mid, join) // entry->join is critical (entry: 2 succs, join: 2 preds)
	bld.SetBlock(mid)
	bld.Jump(join)
	bld.SetBlock(join)
	bld.Output(c)

	if !cfg.HasCriticalEdge(bld.Fn) {
		t.Fatal("expected a critical edge")
	}
	n := cfg.SplitCriticalEdges(bld.Fn)
	if n != 1 {
		t.Fatalf("split %d edges, want 1", n)
	}
	if cfg.HasCriticalEdge(bld.Fn) {
		t.Fatal("critical edge remains after splitting")
	}
	if err := bld.Fn.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCriticalEdgesPreservesSemantics(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		args := []int64{seed, seed * 3, 7}
		before, err := ir.Exec(f, args, 200000)
		if err != nil {
			t.Fatal(err)
		}
		cfg.SplitCriticalEdges(f)
		if err := f.Verify(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after, err := ir.Exec(f, args, 400000)
		if err != nil {
			t.Fatal(err)
		}
		if !before.Equal(after) {
			t.Fatalf("seed %d: splitting changed behaviour", seed)
		}
	}
}

func TestRemoveUnreachable(t *testing.T) {
	bld := ir.NewBuilder("unreach")
	entry := bld.Block("entry")
	dead := bld.Fn.NewBlock("dead")
	exit := bld.Fn.NewBlock("exit")
	v := bld.Val("v")
	bld.SetBlock(entry)
	bld.Input(v)
	bld.Jump(exit)
	bld.SetBlock(dead)
	bld.Jump(exit)
	bld.SetBlock(exit)
	bld.Output(v)

	n := cfg.RemoveUnreachable(bld.Fn)
	if n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if exit.NumPreds() != 1 || exit.Pred(0) != entry {
		t.Fatalf("exit preds wrong after removal: %v", exit.Preds())
	}
	if err := bld.Fn.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPostorderProperties(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		f := testprog.Rand(seed, testprog.DefaultRandOptions())
		po := cfg.Postorder(f)
		rpo := cfg.ReversePostorder(f)
		if len(po) != len(rpo) {
			t.Fatal("orders disagree in length")
		}
		if rpo[0] != f.Entry() {
			t.Fatal("RPO must start at entry")
		}
		seen := make(map[*ir.Block]bool)
		for _, b := range po {
			if seen[b] {
				t.Fatal("duplicate block in postorder")
			}
			seen[b] = true
		}
	}
}
