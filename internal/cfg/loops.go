package cfg

import "outofssa/internal/ir"

// ComputeLoopDepth computes the loop nesting depth of every block and
// stores it in Block.LoopDepth. Loops are identified by back edges
// (edges whose target dominates their source); the natural loop of a back
// edge t->h is h plus every block that reaches t without passing through
// h. Depth is the number of distinct loop headers whose natural loop
// contains the block.
//
// The paper uses depth both for the inner-to-outer traversal of
// Program_pinning and for the 5^depth move weights of Table 5.
func ComputeLoopDepth(f *ir.Func) {
	t := Dominators(f)
	depth := make([]int, f.NumBlocks())

	reach := Reachable(f)
	// Collect back edges in deterministic order.
	type backEdge struct{ tail, head *ir.Block }
	var backs []backEdge
	for _, b := range ReversePostorder(f) {
		for _, sid := range b.Succs() {
			s := f.Block(sid)
			if t.Dominates(s, b) {
				backs = append(backs, backEdge{b, s})
			}
		}
	}

	// Natural loop of each back edge; a block's depth counts the distinct
	// headers of loops containing it.
	headersOf := make([]map[ir.BlockID]bool, f.NumBlocks())
	for _, be := range backs {
		inLoop := make([]bool, f.NumBlocks())
		inLoop[be.head.ID] = true
		stack := []*ir.Block{}
		if !inLoop[be.tail.ID] {
			inLoop[be.tail.ID] = true
			stack = append(stack, be.tail)
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range b.Preds() {
				if reach[p] && !inLoop[p] {
					inLoop[p] = true
					stack = append(stack, f.Block(p))
				}
			}
		}
		for id, in := range inLoop {
			if !in {
				continue
			}
			if headersOf[id] == nil {
				headersOf[id] = make(map[ir.BlockID]bool)
			}
			headersOf[id][be.head.ID] = true
		}
	}
	for id := range depth {
		depth[id] = len(headersOf[id])
	}
	for _, b := range f.Blocks() {
		b.LoopDepth = depth[b.ID]
	}
}

// SplitCriticalEdges inserts an empty block on every critical edge (an
// edge from a block with multiple successors to a block with multiple
// predecessors). φ argument positions are preserved. The out-of-SSA
// translators place φ-related copies at the end of predecessors; without
// critical-edge splitting such a copy would execute on paths that bypass
// the φ, which is exactly the situation that makes the naive Cytron
// translation incorrect (lost-copy problem).
//
// Returns the number of edges split. Loop depths of the new blocks are
// inherited from the deeper endpoint only if ComputeLoopDepth already
// ran; callers normally re-run it afterwards.
func SplitCriticalEdges(f *ir.Func) int {
	n := 0
	// Snapshot: we mutate the block list while iterating.
	blocks := append([]*ir.Block(nil), f.Blocks()...)
	for _, b := range blocks {
		if b.NumSuccs() < 2 {
			continue
		}
		for si := 0; si < b.NumSuccs(); si++ {
			s := b.Succ(si)
			if s.NumPreds() < 2 {
				continue
			}
			mid := f.NewBlock("")
			mid.Append(f.NewInstr(ir.Jump, nil, nil))
			// Rewire b -> mid -> s, preserving positions.
			ss := append([]ir.BlockID(nil), b.Succs()...)
			ss[si] = mid.ID
			b.SetSuccs(ss)
			mid.SetPreds([]ir.BlockID{b.ID})
			mid.SetSuccs([]ir.BlockID{s.ID})
			s.ReplacePred(b.ID, mid.ID)
			// φ uses in s keep their index, so nothing else to update.
			n++
		}
	}
	return n
}

// HasCriticalEdge reports whether f contains any critical edge.
func HasCriticalEdge(f *ir.Func) bool {
	for _, b := range f.Blocks() {
		if b.NumSuccs() < 2 {
			continue
		}
		for _, sid := range b.Succs() {
			if f.Block(sid).NumPreds() > 1 {
				return true
			}
		}
	}
	return false
}
