package cfg

import "outofssa/internal/ir"

// RemoveUnreachable deletes blocks not reachable from the entry,
// unlinking them from the Preds lists of reachable blocks and dropping φ
// arguments that flowed in from removed predecessors.
func RemoveUnreachable(f *ir.Func) int {
	reach := Reachable(f)
	removed := 0
	var kept []ir.BlockID
	for _, b := range f.Blocks() {
		if reach[b.ID] {
			kept = append(kept, b.ID)
			continue
		}
		removed++
		for _, sid := range b.Succs() {
			if !reach[sid] {
				continue
			}
			s := f.Block(sid)
			// Drop the φ argument positions corresponding to b.
			for {
				pi := s.PredIndex(b.ID)
				if pi < 0 {
					break
				}
				s.RemovePredAt(pi)
				for _, phi := range s.Phis() {
					phi.RemoveUseAt(pi)
				}
			}
		}
	}
	if removed > 0 {
		f.SetBlockOrder(kept)
	}
	return removed
}
