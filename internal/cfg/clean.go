package cfg

import "outofssa/internal/ir"

// RemoveUnreachable deletes blocks not reachable from the entry,
// unlinking them from the Preds lists of reachable blocks and dropping φ
// arguments that flowed in from removed predecessors.
func RemoveUnreachable(f *ir.Func) int {
	reach := Reachable(f)
	removed := 0
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b.ID] {
			kept = append(kept, b)
			continue
		}
		removed++
		for _, s := range b.Succs {
			if !reach[s.ID] {
				continue
			}
			// Drop the φ argument positions corresponding to b.
			for {
				pi := s.PredIndex(b)
				if pi < 0 {
					break
				}
				s.Preds = append(s.Preds[:pi], s.Preds[pi+1:]...)
				for _, phi := range s.Phis() {
					phi.Uses = append(phi.Uses[:pi], phi.Uses[pi+1:]...)
				}
			}
		}
	}
	f.Blocks = kept
	if removed > 0 {
		f.NoteCFGMutation() // block list, Preds and φ operand slices edited in place
	}
	return removed
}
