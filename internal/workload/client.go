// Client mode: drive a running laocd instance with generated work.
// The same package that builds the paper's benchmark suites also
// builds the request stream that exercises the daemon — the chaos test
// and the CI smoke job both speak through Drive, so the load generator
// and the service agree on exactly one wire format.
package workload

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"outofssa/internal/ir"
	"outofssa/internal/testprog"
)

// SynthFuncs generates n distinct random structured functions from the
// seed — the synthetic request population for load and chaos runs.
// Seeds are consecutive, so the same (n, seed) reproduces the same
// stream.
func SynthFuncs(n int, seed int64) []*ir.Func {
	out := make([]*ir.Func, n)
	for i := range out {
		out[i] = testprog.Rand(seed+int64(i), testprog.DefaultRandOptions())
	}
	return out
}

// SynthPool returns n functions drawn from a pool of distinct random
// functions generated from seed: result[i] is pool[i%distinct], with
// the *ir.Func pointers shared across repeats. distinct <= 0 or
// >= n degenerates to SynthFuncs(n, seed). A pool smaller than the
// request count is the cache-scaling workload shape: the stream is
// long but its distinct content is bounded, so an LRU-capped service
// must answer most of it from cache with O(distinct) residency.
func SynthPool(n, distinct int, seed int64) []*ir.Func {
	if distinct <= 0 || distinct >= n {
		return SynthFuncs(n, seed)
	}
	pool := SynthFuncs(distinct, seed)
	out := make([]*ir.Func, n)
	for i := range out {
		out[i] = pool[i%distinct]
	}
	return out
}

// PooledRequests builds n raw-IR ClientRequests over funcs (cycling
// when n > len(funcs)), marshalling each distinct function exactly
// once and sharing the encoded document across repeats — the request
// stream for load tests where the marshal cost of the driver must not
// dominate the service under test.
func PooledRequests(funcs []*ir.Func, n, deadlineMS int) ([]ClientRequest, error) {
	docs := make(map[*ir.Func]json.RawMessage, len(funcs))
	reqs := make([]ClientRequest, n)
	for i := 0; i < n; i++ {
		f := funcs[i%len(funcs)]
		doc, ok := docs[f]
		if !ok {
			var err error
			doc, err = ir.Marshal(f)
			if err != nil {
				return nil, err
			}
			docs[f] = doc
		}
		reqs[i] = ClientRequest{IR: doc, DeadlineMS: deadlineMS}
	}
	return reqs, nil
}

// ClientRequest is one /compile body the driver will POST. The fields
// mirror the server's wire schema; zero values are omitted. When
// RawBody is set the request bypasses JSON entirely — Drive posts the
// bytes verbatim (the server sniffs the b1 magic), so deadline and
// debug riders cannot travel with it.
type ClientRequest struct {
	LAI        string          `json:"lai,omitempty"`
	IR         json.RawMessage `json:"ir,omitempty"`
	DeadlineMS int             `json:"deadline_ms,omitempty"`
	Debug      *ClientDebug    `json:"debug,omitempty"`
	RawBody    []byte          `json:"-"`
}

// ClientDebug is the chaos seam block (server must run -allow-debug).
type ClientDebug struct {
	SleepMS   int    `json:"sleep_ms,omitempty"`
	PanicPass string `json:"panic_pass,omitempty"`
}

// IRRequest builds a raw-IR ClientRequest for f (v2 JSON schema).
func IRRequest(f *ir.Func, deadlineMS int) (ClientRequest, error) {
	doc, err := ir.Marshal(f)
	if err != nil {
		return ClientRequest{}, err
	}
	return ClientRequest{IR: doc, DeadlineMS: deadlineMS}, nil
}

// V1Request builds an IR ClientRequest carrying the v1 JSON schema.
func V1Request(f *ir.Func, deadlineMS int) (ClientRequest, error) {
	doc, err := ir.MarshalV1(f)
	if err != nil {
		return ClientRequest{}, err
	}
	return ClientRequest{IR: doc, DeadlineMS: deadlineMS}, nil
}

// B1Request builds an IR ClientRequest carrying the binary b1 schema
// base64'd into the JSON "ir" field — the shape for clients that want
// the binary codec but still need deadline/debug riders.
func B1Request(f *ir.Func, deadlineMS int) (ClientRequest, error) {
	doc, err := ir.MarshalBinary(f)
	if err != nil {
		return ClientRequest{}, err
	}
	quoted, err := json.Marshal(base64.StdEncoding.EncodeToString(doc))
	if err != nil {
		return ClientRequest{}, err
	}
	return ClientRequest{IR: quoted, DeadlineMS: deadlineMS}, nil
}

// B1RawRequest builds a whole-body binary request: the POST body is
// the b1 document itself, no JSON envelope. The server normalizes raw
// and base64 b1 to the same cache keys.
func B1RawRequest(f *ir.Func) (ClientRequest, error) {
	doc, err := ir.MarshalBinary(f)
	if err != nil {
		return ClientRequest{}, err
	}
	return ClientRequest{RawBody: doc}, nil
}

// DriveOptions configures Drive.
type DriveOptions struct {
	// Concurrency is the number of parallel posting goroutines
	// (default 8).
	Concurrency int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
}

// DriveReport tallies one Drive run by response disposition.
type DriveReport struct {
	Sent     int `json:"sent"`
	OK       int `json:"ok"`
	FellBack int `json:"fell_back"`
	Degraded int `json:"degraded"`
	Cached   int `json:"cached"`
	Shed     int `json:"shed"`     // 429
	Deadline int `json:"deadline"` // 504
	Rejected int `json:"rejected"` // 400/422 typed rejections
	Draining int `json:"draining"` // 503
	// Transport counts requests that failed below HTTP (connection
	// refused, EOF) — in a healthy run it must be zero; a crashed
	// daemon shows up here.
	Transport int `json:"transport"`
	// Other counts unexpected status codes; must be zero.
	Other int `json:"other"`
}

func (r *DriveReport) String() string {
	b, _ := json.Marshal(r)
	return string(b)
}

// Drive POSTs every request against baseURL/compile with bounded
// concurrency and classifies the responses. Per-request outcomes land
// in outcomes (when non-nil, len(reqs)): the HTTP status, or -1 for a
// transport failure; outcome bodies land in outputs (when non-nil) for
// 200s so callers can verify payload correctness.
func Drive(baseURL string, reqs []ClientRequest, opt DriveOptions, outcomes []int, outputs []string) DriveReport {
	workers := opt.Concurrency
	if workers <= 0 {
		workers = 8
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	var rep DriveReport
	var ok, fellBack, degraded, cached, shed, deadline, rejected, draining, transport, other atomic.Int64

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				body, ctype := reqs[i].RawBody, "application/octet-stream"
				if body == nil {
					var err error
					body, err = json.Marshal(&reqs[i])
					if err != nil {
						transport.Add(1)
						if outcomes != nil {
							outcomes[i] = -1
						}
						continue
					}
					ctype = "application/json"
				}
				hr, err := client.Post(baseURL+"/compile", ctype, bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					if outcomes != nil {
						outcomes[i] = -1
					}
					continue
				}
				if outcomes != nil {
					outcomes[i] = hr.StatusCode
				}
				switch hr.StatusCode {
				case http.StatusOK:
					var resp struct {
						Output   string `json:"output"`
						FellBack bool   `json:"fell_back"`
						Degraded bool   `json:"degraded"`
						Cached   bool   `json:"cached"`
					}
					if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
						transport.Add(1)
						if outcomes != nil {
							outcomes[i] = -1
						}
						hr.Body.Close()
						continue
					}
					ok.Add(1)
					if resp.FellBack {
						fellBack.Add(1)
					}
					if resp.Degraded {
						degraded.Add(1)
					}
					if resp.Cached {
						cached.Add(1)
					}
					if outputs != nil {
						outputs[i] = resp.Output
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusGatewayTimeout:
					deadline.Add(1)
				case http.StatusBadRequest, http.StatusUnprocessableEntity:
					rejected.Add(1)
				case http.StatusServiceUnavailable:
					draining.Add(1)
				default:
					other.Add(1)
				}
				hr.Body.Close()
			}
		}()
	}
	wg.Wait()
	rep = DriveReport{
		Sent:      len(reqs),
		OK:        int(ok.Load()),
		FellBack:  int(fellBack.Load()),
		Degraded:  int(degraded.Load()),
		Cached:    int(cached.Load()),
		Shed:      int(shed.Load()),
		Deadline:  int(deadline.Load()),
		Rejected:  int(rejected.Load()),
		Draining:  int(draining.Load()),
		Transport: int(transport.Load()),
		Other:     int(other.Load()),
	}
	return rep
}

// MixedRequests builds the smoke/chaos stream over funcs: mostly valid
// IR compiles rotating through every wire schema, plus deterministic
// sprinkles keyed on the request index — every malformedEvery-th
// request is an unparseable body, every deadlineEvery-th carries a 1ms
// deadline with a debug sleep (forced 504), and every faultEvery-th
// carries an injected pass panic (the ISSUE's "1% injected
// pass-panics" knob is faultEvery=100). Any knob ≤ 0 disables that
// sprinkle. Debug-carrying requests require the server to run with
// -allow-debug.
//
// The valid compiles rotate v2 JSON → v1 JSON → base64'd b1 → raw
// binary b1 body by index, so one drive exercises the server's whole
// schema negotiation surface. Sprinkle requests stay on JSON shapes
// (debug riders cannot travel in a raw body).
func MixedRequests(funcs []*ir.Func, deadlineMS, faultEvery, malformedEvery, deadlineEvery int) ([]ClientRequest, error) {
	reqs := make([]ClientRequest, len(funcs))
	for i, f := range funcs {
		switch {
		case malformedEvery > 0 && i%malformedEvery == 1:
			reqs[i] = ClientRequest{LAI: ".func broken\n"}
		case deadlineEvery > 0 && i%deadlineEvery == 2:
			reqs[i] = ClientRequest{
				LAI:        fmt.Sprintf(".func sleepy%d\n.input A:R0\nentry:\n    add B, A, A\n    ret B\n.endfunc\n", i),
				DeadlineMS: 1,
				Debug:      &ClientDebug{SleepMS: 100},
			}
		case faultEvery > 0 && i%faultEvery == 3%faultEvery:
			r, err := IRRequest(f, deadlineMS)
			if err != nil {
				return nil, err
			}
			r.Debug = &ClientDebug{PanicPass: "pinning-sp"}
			reqs[i] = r
		default:
			var r ClientRequest
			var err error
			switch i % 4 {
			case 0:
				r, err = IRRequest(f, deadlineMS)
			case 1:
				r, err = V1Request(f, deadlineMS)
			case 2:
				r, err = B1Request(f, deadlineMS)
			default:
				r, err = B1RawRequest(f)
			}
			if err != nil {
				return nil, err
			}
			reqs[i] = r
		}
	}
	return reqs, nil
}
