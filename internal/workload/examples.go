package workload

import (
	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/testprog"
)

// buildExamples assembles example1-8: the paper's hand-crafted scenarios
// as runnable pre-SSA programs (the LAI-written micro-benchmarks of the
// evaluation section).
func buildExamples() []*ir.Func {
	return []*ir.Func{
		exFigure1(),
		exRepairScenario(),
		exPartialCoalesce(),
		exTwoPhisSharedArg(),
		testprog.SwapLoop(),
		testprog.LostCopy(),
		exAutoAddLoop(),
		exDiamondChain(),
	}
}

func mustParse(src string) *ir.Func {
	f, err := lai.Parse(src)
	if err != nil {
		panic("workload: " + err.Error())
	}
	return f
}

// exFigure1 is the paper's Figure 1 verbatim: parameter passing,
// auto-modified addressing, make/more immediate pair.
func exFigure1() *ir.Func {
	return mustParse(`
.func example1
.input C:R0, P:P0
entry:
    load    A, @P
    autoadd Q, P, 1
    load    B, @Q
    call    D = f(A, B)
    add     E, C, D
    make    L, 0x00A1
    more    K, L, 0x2BFA
    sub     F, E, K
    ret     F
.endfunc
`)
}

// exRepairScenario is the Figure 3 shape: a value needed in R0 across a
// call that also returns in R0 (forces a repair).
func exRepairScenario() *ir.Func {
	return mustParse(`
.func example2
.input x, y, n
entry:
    const k, 3
head:
    add   y, y, k
    call  t = g(x, y)
    blt   t, n, head
    ret   x
.endfunc
`)
}

// exPartialCoalesce is the Figure 8 shape: two independent webs of one
// variable, one conflicting with a later call result.
func exPartialCoalesce() *ir.Func {
	return mustParse(`
.func example3
entry:
    const one, 1
    call  z = f1()
    add   u1, z, one
    call  z = f2()
    call  w = f3()
    add   u2, z, w
    add   r, u1, u2
    ret   r
.endfunc
`)
}

// exTwoPhisSharedArg is the Figure 9 shape: two merges sharing an
// argument at one confluence point.
func exTwoPhisSharedArg() *ir.Func {
	return mustParse(`
.func example4
.input c
entry:
    br    c, p1, p2
p1:
    call  x = f1()
    call  z = f3()
    mov   xx, x
    mov   yy, z
    jump  join
p2:
    call  y = f2()
    mov   xx, y
    mov   yy, y
    jump  join
join:
    add   r, xx, yy
    ret   r
.endfunc
`)
}

// exAutoAddLoop is the Figure 11 shape: a φ whose arguments interfere,
// one of them tied to an autoadd chain.
func exAutoAddLoop() *ir.Func {
	return mustParse(`
.func example7
entry:
    const   a, 100
    const   k, 10
    call    b = f1()
head:
    autoadd b, b, 1
    and     c1, b, k
    br      c1, l1, l2
l1:
    mov     B, a
    jump    latch
l2:
    mov     B, b
    jump    latch
latch:
    blt     B, k, back
    ret     B
back:
    mov     b, B
    jump    head
.endfunc
`)
}

// exDiamondChain chains several diamonds so φ webs overlap.
func exDiamondChain() *ir.Func {
	return mustParse(`
.func example8
.input a, b, c
entry:
    blt   a, b, d1t
    mov   x, a
    jump  d1j
d1t:
    mov   x, b
    jump  d1j
d1j:
    blt   x, c, d2t
    mov   y, x
    jump  d2j
d2t:
    add   y, x, c
    jump  d2j
d2j:
    blt   y, a, d3t
    sub   z, y, a
    jump  d3j
d3t:
    mov   z, y
    jump  d3j
d3j:
    add   r, z, x
    ret   r
.endfunc
`)
}
