package workload

import "outofssa/internal/ir"

// buildKernels lowers the full kernel set with one style. The population
// mirrors the paper's description of VALcc1/VALcc2: "about 40 small
// functions with some basic digital signal processing kernels, integer
// Discrete Cosine Transform, sorting, searching, and string searching
// algorithms".
func buildKernels(st style) []*ir.Func {
	builders := []func(style) *ir.Func{
		kDotProd, kFIR4, kIIRBiquad, kVecAdd, kVecScale, kSaxpy,
		kEnergy, kAbsSum, kMaxSearch, kMinSearch, kArgMax, kClip,
		kMovingAvg, kConv4, kCorrLag, kDCT4, kIDCT4, kComplexMAC,
		kBubblePass, kInsertionInner, kSelectionMin, kBinSearch,
		kLinSearch, kStrLen, kStrCmp, kStrChr, kMemCpy, kMemSet,
		kCRC8, kParity, kPopCount, kGCD, kFib, kHorner, kMat2Mul,
		kQuantize, kDeltaEnc, kDeltaDec, kZigzag4, kViterbiACS,
		kHist4, kPreemph, kRMSCall, kNormalizeCall,
	}
	funcs := make([]*ir.Func, 0, len(builders))
	for _, b := range builders {
		funcs = append(funcs, b(st))
	}
	return funcs
}

// clampN bounds a parameter-derived trip count so every kernel
// terminates quickly under any interpreter input.
func (k *kb) clampN(n ir.ValueID, bound int64) ir.ValueID {
	b := k.num(bound)
	zero := k.num(0)
	m := k.Val("n_cl")
	k.Binary(ir.Min, m, n, b)
	k.Binary(ir.Max, m, m, zero)
	return m
}

// walker returns a fresh pointer initialized to base for loadStep walks.
func (k *kb) walker(base ir.ValueID) ir.ValueID {
	p := k.Val("")
	k.Copy(p, base)
	return p
}

// useSP appends the stack pointer to the entry .input so stack-relative
// code has a defined SP (the ABI guarantees SP on entry).
func (k *kb) useSP() ir.ValueID {
	in := k.Fn.Entry().Instr(0)
	if in.Op() != ir.Input {
		panic("workload: useSP before params")
	}
	in.AddDef(ir.Operand{Val: k.Fn.Target.SP})
	return k.Fn.Target.SP
}

func kDotProd(st style) *ir.Func {
	k := newKB("dotprod", st)
	ps := k.params("pa", "pb", "n")
	pa, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	acc := k.Val("acc")
	k.Const(acc, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		b := k.loadStep(wb, 1)
		k.macc(acc, a, b)
	})
	return k.ret(acc)
}

func kFIR4(st style) *ir.Func {
	k := newKB("fir4", st)
	ps := k.params("px", "ph", "py", "n")
	px, ph, py, n := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 8)
	wy := k.walker(py)
	four := k.num(4)
	k.loop(n, func(i ir.ValueID) {
		acc := k.Val("acc")
		k.Const(acc, 0)
		xi := k.addr(px, i)
		wx, wh := k.walker(xi), k.walker(ph)
		k.loop(four, func(j ir.ValueID) {
			x := k.loadStep(wx, 1)
			h := k.loadStep(wh, 1)
			k.macc(acc, x, h)
		})
		k.storeStep(wy, acc, 1)
	})
	return k.ret(wy)
}

func kIIRBiquad(st style) *ir.Func {
	k := newKB("iir_biquad", st)
	ps := k.params("px", "n", "a1", "a2")
	px, n, a1, a2 := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	w1 := k.Val("w1")
	w2 := k.Val("w2")
	k.Const(w1, 0)
	k.Const(w2, 0)
	wx := k.walker(px)
	acc := k.Val("y")
	k.Const(acc, 0)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wx, 1)
		t := k.binOpFresh(ir.Add, x, w1)
		k.macc(t, a1, w1)
		k.macc(t, a2, w2)
		k.Copy(w2, w1)
		k.Copy(w1, t)
		k.Binary(ir.Add, acc, acc, t)
	})
	return k.ret(acc)
}

func kVecAdd(st style) *ir.Func {
	k := newKB("vec_add", st)
	ps := k.params("pa", "pb", "pc", "n")
	pa, pb, pc, n := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	wa, wb, wc := k.walker(pa), k.walker(pb), k.walker(pc)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		b := k.loadStep(wb, 1)
		s := k.binOp(ir.Add, a, b)
		k.storeStep(wc, s, 1)
	})
	return k.ret(wc)
}

func kVecScale(st style) *ir.Func {
	k := newKB("vec_scale", st)
	ps := k.params("pa", "pc", "n", "s")
	pa, pc, n, s := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	wa, wc := k.walker(pa), k.walker(pc)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		v := k.binOp(ir.Mul, a, s)
		k.storeStep(wc, v, 1)
	})
	return k.ret(wc)
}

func kSaxpy(st style) *ir.Func {
	k := newKB("saxpy", st)
	ps := k.params("pa", "pb", "n", "s")
	pa, pb, n, s := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		b := k.Val("")
		k.Load(b, wb)
		acc := k.Val("acc")
		k.Copy(acc, b)
		k.macc(acc, s, a)
		k.storeStep(wb, acc, 1)
	})
	return k.ret(wb)
}

func kEnergy(st style) *ir.Func {
	k := newKB("energy", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	acc := k.Val("acc")
	k.Const(acc, 0)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		k.macc(acc, a, a)
	})
	return k.ret(acc)
}

func kAbsSum(st style) *ir.Func {
	k := newKB("abs_sum", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	acc := k.Val("acc")
	zero := k.num(0)
	k.Const(acc, 0)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		isNeg := k.binOpFresh(ir.CmpLT, a, zero)
		na := k.Val("")
		k.Unary(ir.Neg, na, a)
		abs := k.Val("")
		k.Select(abs, isNeg, na, a)
		k.Binary(ir.Add, acc, acc, abs)
	})
	return k.ret(acc)
}

func kMaxSearch(st style) *ir.Func {
	k := newKB("max_search", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	best := k.Val("best")
	k.Const(best, -(1 << 30))
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		k.Binary(ir.Max, best, best, a)
	})
	return k.ret(best)
}

func kMinSearch(st style) *ir.Func {
	k := newKB("min_search", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	best := k.Val("best")
	k.Const(best, 1<<30)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		k.Binary(ir.Min, best, best, a)
	})
	return k.ret(best)
}

func kArgMax(st style) *ir.Func {
	k := newKB("argmax", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	best := k.Val("best")
	idx := k.Val("idx")
	k.Const(best, -(1 << 30))
	k.Const(idx, 0)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		gt := k.binOpFresh(ir.CmpGT, a, best)
		k.ifElse(gt, func() {
			k.Copy(best, a)
			k.Copy(idx, i)
		}, nil)
	})
	return k.ret(idx, best)
}

func kClip(st style) *ir.Func {
	k := newKB("clip", st)
	ps := k.params("pa", "n", "lo", "hi")
	pa, n, lo, hi := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	wa := k.walker(pa)
	count := k.Val("count")
	k.Const(count, 0)
	one := k.num(1)
	k.loop(n, func(i ir.ValueID) {
		a := k.Val("")
		k.Load(a, wa)
		cl := k.binOpFresh(ir.Max, a, lo)
		k.Binary(ir.Min, cl, cl, hi)
		ne := k.binOpFresh(ir.CmpNE, cl, a)
		k.ifElse(ne, func() {
			k.Binary(ir.Add, count, count, one)
		}, nil)
		k.storeStep(wa, cl, 1)
	})
	return k.ret(count)
}

func kMovingAvg(st style) *ir.Func {
	k := newKB("moving_avg", st)
	ps := k.params("pa", "pb", "n")
	pa, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 12)
	wa, wb := k.walker(pa), k.walker(pb)
	four := k.num(4)
	k.loop(n, func(i ir.ValueID) {
		w := k.walker(wa)
		acc := k.Val("acc")
		k.Const(acc, 0)
		k.loop(four, func(j ir.ValueID) {
			x := k.loadStep(w, 1)
			k.Binary(ir.Add, acc, acc, x)
		})
		avg := k.binOp(ir.Shr, acc, k.num(2))
		k.storeStep(wb, avg, 1)
		k.loadStep(wa, 1) // slide the window
	})
	return k.ret(wb)
}

func kConv4(st style) *ir.Func {
	k := newKB("conv4", st)
	ps := k.params("pa", "pb", "pc", "n")
	pa, pb, pc, n := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 8)
	wc := k.walker(pc)
	four := k.num(4)
	k.loop(n, func(i ir.ValueID) {
		acc := k.Val("acc")
		k.Const(acc, 0)
		k.loop(four, func(j ir.ValueID) {
			d := k.binOpFresh(ir.Sub, i, j)
			av := k.Val("")
			k.Load(av, k.addr(pa, d))
			bv := k.Val("")
			k.Load(bv, k.addr(pb, j))
			k.macc(acc, av, bv)
		})
		k.storeStep(wc, acc, 1)
	})
	return k.ret(wc)
}

func kCorrLag(st style) *ir.Func {
	k := newKB("corr_lag", st)
	ps := k.params("pa", "n", "lag")
	pa, n, lag := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	lag = k.clampN(lag, 4)
	acc := k.Val("acc")
	k.Const(acc, 0)
	k.loop(n, func(i ir.ValueID) {
		x := k.Val("")
		k.Load(x, k.addr(pa, i))
		sh := k.binOpFresh(ir.Add, i, lag)
		y := k.Val("")
		k.Load(y, k.addr(pa, sh))
		k.macc(acc, x, y)
	})
	return k.ret(acc)
}

// kDCT4 is a 4-point integer DCT butterfly chain (straight-line,
// register-pressure heavy — the shape the paper's iDCT benchmark has).
func kDCT4(st style) *ir.Func {
	k := newKB("dct4", st)
	ps := k.params("px", "py")
	px, py := ps[0], ps[1]
	w := k.walker(px)
	x0 := k.loadStep(w, 1)
	x1 := k.loadStep(w, 1)
	x2 := k.loadStep(w, 1)
	x3 := k.loadStep(w, 1)
	s0 := k.binOpFresh(ir.Add, x0, x3)
	s1 := k.binOpFresh(ir.Add, x1, x2)
	d0 := k.binOpFresh(ir.Sub, x0, x3)
	d1 := k.binOpFresh(ir.Sub, x1, x2)
	c2, c6 := k.num(54), k.num(23) // integer cosine constants
	y0 := k.binOpFresh(ir.Add, s0, s1)
	y2 := k.binOpFresh(ir.Sub, s0, s1)
	t0 := k.binOpFresh(ir.Mul, d0, c2)
	y1 := k.Val("y1")
	k.Copy(y1, t0)
	k.macc(y1, d1, c6)
	t1 := k.binOpFresh(ir.Mul, d0, c6)
	y3 := k.Val("y3")
	k.Copy(y3, t1)
	nc2 := k.Val("")
	k.Unary(ir.Neg, nc2, c2)
	k.macc(y3, d1, nc2)
	wo := k.walker(py)
	k.storeStep(wo, y0, 1)
	k.storeStep(wo, y1, 1)
	k.storeStep(wo, y2, 1)
	k.storeStep(wo, y3, 1)
	return k.ret(y0)
}

func kIDCT4(st style) *ir.Func {
	k := newKB("idct4", st)
	ps := k.params("px", "py")
	px, py := ps[0], ps[1]
	w := k.walker(px)
	y0 := k.loadStep(w, 1)
	y1 := k.loadStep(w, 1)
	y2 := k.loadStep(w, 1)
	y3 := k.loadStep(w, 1)
	e0 := k.binOpFresh(ir.Add, y0, y2)
	e1 := k.binOpFresh(ir.Sub, y0, y2)
	c2, c6 := k.num(54), k.num(23)
	o0 := k.Val("o0")
	t := k.binOpFresh(ir.Mul, y1, c2)
	k.Copy(o0, t)
	k.macc(o0, y3, c6)
	o1 := k.Val("o1")
	t2 := k.binOpFresh(ir.Mul, y1, c6)
	k.Copy(o1, t2)
	nc2 := k.Val("")
	k.Unary(ir.Neg, nc2, c2)
	k.macc(o1, y3, nc2)
	x0 := k.binOpFresh(ir.Add, e0, o0)
	x3 := k.binOpFresh(ir.Sub, e0, o0)
	x1 := k.binOpFresh(ir.Add, e1, o1)
	x2 := k.binOpFresh(ir.Sub, e1, o1)
	wo := k.walker(py)
	k.storeStep(wo, x0, 1)
	k.storeStep(wo, x1, 1)
	k.storeStep(wo, x2, 1)
	k.storeStep(wo, x3, 1)
	return k.ret(x0)
}

func kComplexMAC(st style) *ir.Func {
	k := newKB("cmplx_mac", st)
	ps := k.params("pa", "pb", "n")
	pa, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 8)
	re := k.Val("re")
	im := k.Val("im")
	k.Const(re, 0)
	k.Const(im, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		ar := k.loadStep(wa, 1)
		ai := k.loadStep(wa, 1)
		br := k.loadStep(wb, 1)
		bi := k.loadStep(wb, 1)
		k.macc(re, ar, br)
		t := k.binOpFresh(ir.Mul, ai, bi)
		k.Binary(ir.Sub, re, re, t)
		k.macc(im, ar, bi)
		k.macc(im, ai, br)
	})
	return k.ret(re, im)
}

func kBubblePass(st style) *ir.Func {
	k := newKB("bubble_pass", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 12)
	one := k.num(1)
	swaps := k.Val("swaps")
	k.Const(swaps, 0)
	m := k.binOpFresh(ir.Sub, n, one)
	zero := k.num(0)
	k.Binary(ir.Max, m, m, zero)
	k.loop(m, func(i ir.ValueID) {
		a0 := k.addr(pa, i)
		i1 := k.binOpFresh(ir.Add, i, one)
		a1 := k.addr(pa, i1)
		x := k.Val("")
		y := k.Val("")
		k.Load(x, a0)
		k.Load(y, a1)
		gt := k.binOpFresh(ir.CmpGT, x, y)
		k.ifElse(gt, func() {
			k.Store(a0, y)
			k.Store(a1, x)
			k.Binary(ir.Add, swaps, swaps, one)
		}, nil)
	})
	return k.ret(swaps)
}

func kInsertionInner(st style) *ir.Func {
	k := newKB("insertion_inner", st)
	ps := k.params("pa", "n", "key")
	pa, n, key := ps[0], ps[1], ps[2]
	n = k.clampN(n, 12)
	one := k.num(1)
	zero := k.num(0)
	// Shift elements greater than key one slot right, scanning down.
	j := k.Val("j")
	k.Binary(ir.Sub, j, n, one)

	f := k.Fn
	head := f.NewBlock("")
	body := f.NewBlock("")
	exit := f.NewBlock("")
	k.Jump(head)
	k.SetBlock(head)
	inRange := k.binOpFresh(ir.CmpGE, j, zero)
	k.Br(inRange, body, exit)
	k.SetBlock(body)
	x := k.Val("")
	k.Load(x, k.addr(pa, j))
	gt := k.binOpFresh(ir.CmpGT, x, key)
	done := f.NewBlock("")
	cont := f.NewBlock("")
	k.Br(gt, cont, done)
	k.SetBlock(cont)
	j1 := k.binOpFresh(ir.Add, j, one)
	k.Store(k.addr(pa, j1), x)
	k.Binary(ir.Sub, j, j, one)
	k.Jump(head)
	k.SetBlock(done)
	k.Jump(exit)
	k.SetBlock(exit)
	j1f := k.binOpFresh(ir.Add, j, one)
	k.Store(k.addr(pa, j1f), key)
	return k.ret(j1f)
}

func kSelectionMin(st style) *ir.Func {
	k := newKB("selection_min", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 8)
	total := k.Val("total")
	k.Const(total, 0)
	k.loop(n, func(i ir.ValueID) {
		bi := k.Val("bi")
		k.Copy(bi, i)
		bv := k.Val("bv")
		k.Load(bv, k.addr(pa, i))
		k.loop(n, func(j ir.ValueID) {
			after := k.binOpFresh(ir.CmpGT, j, i)
			k.ifElse(after, func() {
				x := k.Val("")
				k.Load(x, k.addr(pa, j))
				lt := k.binOpFresh(ir.CmpLT, x, bv)
				k.ifElse(lt, func() {
					k.Copy(bv, x)
					k.Copy(bi, j)
				}, nil)
			}, nil)
		})
		k.Binary(ir.Add, total, total, bv)
	})
	return k.ret(total)
}

func kBinSearch(st style) *ir.Func {
	k := newKB("binsearch", st)
	ps := k.params("pa", "n", "key")
	pa, n, key := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	one := k.num(1)
	lo := k.Val("lo")
	hi := k.Val("hi")
	k.Const(lo, 0)
	k.Copy(hi, n)
	found := k.Val("found")
	k.Const(found, -1)

	f := k.Fn
	head := f.NewBlock("")
	body := f.NewBlock("")
	exit := f.NewBlock("")
	k.Jump(head)
	k.SetBlock(head)
	c := k.binOpFresh(ir.CmpLT, lo, hi)
	k.Br(c, body, exit)
	k.SetBlock(body)
	mid := k.binOpFresh(ir.Add, lo, hi)
	k.Binary(ir.Shr, mid, mid, one)
	x := k.Val("")
	k.Load(x, k.addr(pa, mid))
	lt := k.binOpFresh(ir.CmpLT, x, key)
	k.ifElse(lt, func() {
		k.Binary(ir.Add, lo, mid, one)
	}, func() {
		eq := k.binOpFresh(ir.CmpEQ, x, key)
		k.ifElse(eq, func() {
			k.Copy(found, mid)
		}, nil)
		k.Copy(hi, mid)
	})
	eqDone := k.binOpFresh(ir.CmpGE, found, k.num(0))
	k.ifElse(eqDone, func() {
		k.Copy(lo, hi) // force exit
	}, nil)
	k.Jump(head)
	k.SetBlock(exit)
	return k.ret(found)
}

func kLinSearch(st style) *ir.Func {
	k := newKB("linsearch", st)
	ps := k.params("pa", "n", "key")
	pa, n, key := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	found := k.Val("found")
	k.Const(found, -1)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		eq := k.binOpFresh(ir.CmpEQ, x, key)
		k.ifElse(eq, func() {
			notYet := k.binOpFresh(ir.CmpLT, found, k.num(0))
			k.ifElse(notYet, func() { k.Copy(found, i) }, nil)
		}, nil)
	})
	return k.ret(found)
}

func kStrLen(st style) *ir.Func {
	k := newKB("strlen16", st)
	ps := k.params("p")
	p := ps[0]
	bound := k.num(16)
	lenv := k.Val("len")
	k.Const(lenv, 0)
	stop := k.Val("stop")
	k.Const(stop, 0)
	one := k.num(1)
	mask := k.num(0xFF)
	wp := k.walker(p)
	k.loop(bound, func(i ir.ValueID) {
		c := k.loadStep(wp, 1)
		k.Binary(ir.And, c, c, mask)
		z := k.binOpFresh(ir.CmpEQ, c, k.num(0))
		k.Binary(ir.Or, stop, stop, z)
		notStopped := k.binOpFresh(ir.CmpEQ, stop, k.num(0))
		k.ifElse(notStopped, func() {
			k.Binary(ir.Add, lenv, lenv, one)
		}, nil)
	})
	return k.ret(lenv)
}

func kStrCmp(st style) *ir.Func {
	k := newKB("strcmp16", st)
	ps := k.params("pa", "pb")
	pa, pb := ps[0], ps[1]
	bound := k.num(16)
	res := k.Val("res")
	k.Const(res, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	mask := k.num(0xFF)
	k.loop(bound, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		b := k.loadStep(wb, 1)
		k.Binary(ir.And, a, a, mask)
		k.Binary(ir.And, b, b, mask)
		undecided := k.binOpFresh(ir.CmpEQ, res, k.num(0))
		k.ifElse(undecided, func() {
			d := k.binOpFresh(ir.Sub, a, b)
			k.Copy(res, d)
		}, nil)
	})
	return k.ret(res)
}

func kStrChr(st style) *ir.Func {
	k := newKB("strchr16", st)
	ps := k.params("p", "c")
	p, c := ps[0], ps[1]
	bound := k.num(16)
	pos := k.Val("pos")
	k.Const(pos, -1)
	wp := k.walker(p)
	mask := k.num(0xFF)
	want := k.binOpFresh(ir.And, c, mask)
	k.loop(bound, func(i ir.ValueID) {
		x := k.loadStep(wp, 1)
		k.Binary(ir.And, x, x, mask)
		eq := k.binOpFresh(ir.CmpEQ, x, want)
		miss := k.binOpFresh(ir.CmpLT, pos, k.num(0))
		hit := k.binOpFresh(ir.And, eq, miss)
		k.ifElse(hit, func() { k.Copy(pos, i) }, nil)
	})
	return k.ret(pos)
}

func kMemCpy(st style) *ir.Func {
	k := newKB("memcpy", st)
	ps := k.params("pd", "psrc", "n")
	pd, psrc, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	wd, ws := k.walker(pd), k.walker(psrc)
	k.loop(n, func(i ir.ValueID) {
		v := k.loadStep(ws, 1)
		k.storeStep(wd, v, 1)
	})
	return k.ret(wd)
}

func kMemSet(st style) *ir.Func {
	k := newKB("memset", st)
	ps := k.params("pd", "v", "n")
	pd, v, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	wd := k.walker(pd)
	k.loop(n, func(i ir.ValueID) {
		k.storeStep(wd, v, 1)
	})
	return k.ret(wd)
}

func kCRC8(st style) *ir.Func {
	k := newKB("crc8", st)
	ps := k.params("x", "poly")
	x, poly := ps[0], ps[1]
	crc := k.Val("crc")
	k.Copy(crc, x)
	eight := k.num(8)
	one := k.num(1)
	k.loop(eight, func(i ir.ValueID) {
		top := k.binOpFresh(ir.Shr, crc, k.num(7))
		k.Binary(ir.And, top, top, one)
		k.Binary(ir.Shl, crc, crc, one)
		k.ifElse(top, func() {
			k.Binary(ir.Xor, crc, crc, poly)
		}, nil)
		k.Binary(ir.And, crc, crc, k.num(0xFF))
	})
	return k.ret(crc)
}

func kParity(st style) *ir.Func {
	k := newKB("parity", st)
	ps := k.params("x")
	x := ps[0]
	p := k.Val("p")
	k.Const(p, 0)
	w := k.Val("w")
	k.Copy(w, x)
	one := k.num(1)
	k.loop(k.num(16), func(i ir.ValueID) {
		bit := k.binOpFresh(ir.And, w, one)
		k.Binary(ir.Xor, p, p, bit)
		k.Binary(ir.Shr, w, w, one)
	})
	return k.ret(p)
}

func kPopCount(st style) *ir.Func {
	k := newKB("popcount", st)
	ps := k.params("x")
	x := ps[0]
	cnt := k.Val("cnt")
	k.Const(cnt, 0)
	w := k.Val("w")
	k.Copy(w, x)
	one := k.num(1)
	k.loop(k.num(16), func(i ir.ValueID) {
		bit := k.binOpFresh(ir.And, w, one)
		k.Binary(ir.Add, cnt, cnt, bit)
		k.Binary(ir.Shr, w, w, one)
	})
	return k.ret(cnt)
}

func kGCD(st style) *ir.Func {
	k := newKB("gcd", st)
	ps := k.params("a", "b")
	a, b := ps[0], ps[1]
	x := k.Val("x")
	y := k.Val("y")
	k.Copy(x, a)
	k.Copy(y, b)
	// Bounded Euclid: 24 iterations is plenty for 64-bit inputs.
	k.loop(k.num(24), func(i ir.ValueID) {
		nz := k.binOpFresh(ir.CmpNE, y, k.num(0))
		k.ifElse(nz, func() {
			r := k.binOpFresh(ir.Rem, x, y)
			k.Copy(x, y)
			k.Copy(y, r)
		}, nil)
	})
	return k.ret(x)
}

func kFib(st style) *ir.Func {
	k := newKB("fib", st)
	ps := k.params("n")
	n := k.clampN(ps[0], 20)
	a := k.Val("a")
	b := k.Val("b")
	k.Const(a, 0)
	k.Const(b, 1)
	k.loop(n, func(i ir.ValueID) {
		t := k.binOpFresh(ir.Add, a, b)
		k.Copy(a, b)
		k.Copy(b, t)
	})
	return k.ret(a)
}

func kHorner(st style) *ir.Func {
	k := newKB("horner", st)
	ps := k.params("pc", "x", "n")
	pc, x, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 8)
	acc := k.Val("acc")
	k.Const(acc, 0)
	wc := k.walker(pc)
	k.loop(n, func(i ir.ValueID) {
		c := k.loadStep(wc, 1)
		k.Binary(ir.Mul, acc, acc, x)
		k.Binary(ir.Add, acc, acc, c)
	})
	return k.ret(acc)
}

func kMat2Mul(st style) *ir.Func {
	k := newKB("mat2mul", st)
	ps := k.params("pa", "pb", "pc")
	pa, pb, pc := ps[0], ps[1], ps[2]
	wa := k.walker(pa)
	a00 := k.loadStep(wa, 1)
	a01 := k.loadStep(wa, 1)
	a10 := k.loadStep(wa, 1)
	a11 := k.loadStep(wa, 1)
	wb := k.walker(pb)
	b00 := k.loadStep(wb, 1)
	b01 := k.loadStep(wb, 1)
	b10 := k.loadStep(wb, 1)
	b11 := k.loadStep(wb, 1)
	c00 := k.Val("c00")
	k.Binary(ir.Mul, c00, a00, b00)
	k.macc(c00, a01, b10)
	c01 := k.Val("c01")
	k.Binary(ir.Mul, c01, a00, b01)
	k.macc(c01, a01, b11)
	c10 := k.Val("c10")
	k.Binary(ir.Mul, c10, a10, b00)
	k.macc(c10, a11, b10)
	c11 := k.Val("c11")
	k.Binary(ir.Mul, c11, a10, b01)
	k.macc(c11, a11, b11)
	wc := k.walker(pc)
	k.storeStep(wc, c00, 1)
	k.storeStep(wc, c01, 1)
	k.storeStep(wc, c10, 1)
	k.storeStep(wc, c11, 1)
	return k.ret(c00)
}

func kQuantize(st style) *ir.Func {
	k := newKB("quantize", st)
	ps := k.params("pa", "pb", "n", "q")
	pa, pb, n, q := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		d := k.binOp(ir.Div, x, q)
		k.storeStep(wb, d, 1)
	})
	return k.ret(wb)
}

func kDeltaEnc(st style) *ir.Func {
	k := newKB("delta_enc", st)
	ps := k.params("pa", "pb", "n")
	pa, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	prev := k.Val("prev")
	k.Const(prev, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		d := k.binOp(ir.Sub, x, prev)
		k.storeStep(wb, d, 1)
		k.Copy(prev, x)
	})
	return k.ret(prev)
}

func kDeltaDec(st style) *ir.Func {
	k := newKB("delta_dec", st)
	ps := k.params("pa", "pb", "n")
	pa, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	acc := k.Val("acc")
	k.Const(acc, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		d := k.loadStep(wa, 1)
		k.Binary(ir.Add, acc, acc, d)
		k.storeStep(wb, acc, 1)
	})
	return k.ret(acc)
}

func kZigzag4(st style) *ir.Func {
	k := newKB("zigzag4", st)
	ps := k.params("pa", "pb")
	pa, pb := ps[0], ps[1]
	order := []int64{0, 1, 2, 3, 3, 2, 1, 0}
	wb := k.walker(pb)
	for _, idx := range order {
		v := k.Val("")
		k.Load(v, k.addr(pa, k.num(idx)))
		k.storeStep(wb, v, 1)
	}
	return k.ret(wb)
}

func kViterbiACS(st style) *ir.Func {
	k := newKB("viterbi_acs", st)
	ps := k.params("pm", "pb", "n")
	pm, pb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 8)
	wm, wb := k.walker(pm), k.walker(pb)
	best := k.Val("best")
	k.Const(best, 0)
	k.loop(n, func(i ir.ValueID) {
		m0 := k.loadStep(wm, 1)
		m1 := k.loadStep(wm, 1)
		br := k.loadStep(wb, 1)
		p0 := k.binOpFresh(ir.Add, m0, br)
		p1 := k.binOpFresh(ir.Sub, m1, br)
		ge := k.binOpFresh(ir.CmpGE, p0, p1)
		sel := k.Val("")
		k.Select(sel, ge, p0, p1)
		k.Binary(ir.Add, best, best, sel)
	})
	return k.ret(best)
}

func kHist4(st style) *ir.Func {
	k := newKB("hist4", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	sp := k.useSP()
	n = k.clampN(n, 16)
	// Zero 4 bins on the stack.
	zero := k.num(0)
	for b := int64(0); b < 4; b++ {
		k.Store(k.addr(sp, k.num(b)), zero)
	}
	three := k.num(3)
	one := k.num(1)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		bin := k.binOpFresh(ir.And, x, three)
		slot := k.addr(sp, bin)
		c := k.Val("")
		k.Load(c, slot)
		k.Binary(ir.Add, c, c, one)
		k.Store(slot, c)
	})
	s := k.Val("s")
	k.Load(s, k.addr(sp, three))
	return k.ret(s)
}

func kPreemph(st style) *ir.Func {
	k := newKB("preemph", st)
	ps := k.params("pa", "pb", "n", "mu")
	pa, pb, n, mu := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 16)
	prev := k.Val("prev")
	k.Const(prev, 0)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		t := k.binOpFresh(ir.Mul, prev, mu)
		sh := k.binOpFresh(ir.Shr, t, k.num(7))
		y := k.binOp(ir.Sub, x, sh)
		k.storeStep(wb, y, 1)
		k.Copy(prev, x)
	})
	return k.ret(prev)
}

// kRMSCall exercises the call ABI: the square root is an external helper.
func kRMSCall(st style) *ir.Func {
	k := newKB("rms_call", st)
	ps := k.params("pa", "n")
	pa, n := ps[0], ps[1]
	n = k.clampN(n, 16)
	acc := k.Val("acc")
	k.Const(acc, 0)
	wa := k.walker(pa)
	k.loop(n, func(i ir.ValueID) {
		a := k.loadStep(wa, 1)
		k.macc(acc, a, a)
	})
	mean := k.binOpFresh(ir.Div, acc, k.binOpFresh(ir.Max, n, k.num(1)))
	r := k.Val("r")
	k.Call("isqrt", []ir.ValueID{r}, mean)
	return k.ret(r)
}

// kNormalizeCall calls a helper per element (heavy ABI pressure: the
// argument and result registers are written in every iteration).
func kNormalizeCall(st style) *ir.Func {
	k := newKB("normalize_call", st)
	ps := k.params("pa", "pb", "n", "g")
	pa, pb, n, g := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 8)
	wa, wb := k.walker(pa), k.walker(pb)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wa, 1)
		y := k.Val("")
		k.Call("scale_q15", []ir.ValueID{y}, x, g)
		k.storeStep(wb, y, 1)
	})
	return k.ret(wb)
}
