package workload_test

import (
	"testing"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/workload"
)

var argSets = [][]int64{
	{0, 0, 0, 0},
	{100, 200, 300, 5},
	{7, 3, 9, 12},
	{50, 60, 2, 8},
}

func TestSuitesBuildAndVerify(t *testing.T) {
	for _, s := range workload.All() {
		if len(s.Funcs) == 0 {
			t.Errorf("%s: empty suite", s.Name)
		}
		names := make(map[string]bool)
		for _, f := range s.Funcs {
			if err := f.Verify(); err != nil {
				t.Errorf("%s/%s: %v", s.Name, f.Name, err)
			}
			if names[f.Name] {
				t.Errorf("%s: duplicate function name %s", s.Name, f.Name)
			}
			names[f.Name] = true
		}
	}
}

func TestSuiteSizes(t *testing.T) {
	v1 := workload.VALcc1()
	if len(v1.Funcs) < 40 {
		t.Errorf("VALcc1 has %d kernels, want >= 40 (paper: 'about 40 small functions')", len(v1.Funcs))
	}
	ex := workload.Examples()
	if len(ex.Funcs) != 8 {
		t.Errorf("examples suite has %d functions, want 8", len(ex.Funcs))
	}
	lg := workload.LAILarge()
	for _, f := range lg.Funcs {
		if f.NumInstrs() < 25 {
			t.Errorf("LAI_Large/%s has only %d instructions — not 'large'", f.Name, f.NumInstrs())
		}
	}
	sp := workload.SPECint()
	if len(sp.Funcs) != workload.SPECintFuncs {
		t.Errorf("SPECint has %d functions", len(sp.Funcs))
	}
	if sp.NumInstrs() < 10*lg.NumInstrs() {
		t.Errorf("SPECint (%d instrs) should dwarf LAI_Large (%d)", sp.NumInstrs(), lg.NumInstrs())
	}
}

func TestSuitesExecute(t *testing.T) {
	for _, s := range workload.All() {
		for _, f := range s.Funcs {
			for _, args := range argSets {
				if _, err := ir.Exec(f, args, 300000); err != nil {
					t.Fatalf("%s/%s args=%v: %v", s.Name, f.Name, args, err)
				}
			}
		}
	}
}

func TestSuitesDeterministic(t *testing.T) {
	a := workload.VALcc1()
	b := workload.VALcc1()
	for i := range a.Funcs {
		ra, err := ir.Exec(a.Funcs[i], argSets[1], 300000)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := ir.Exec(b.Funcs[i], argSets[1], 300000)
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Equal(rb) {
			t.Fatalf("%s: rebuild changed behaviour", a.Funcs[i].Name)
		}
	}
}

// TestStylesAgree: VALcc1 and VALcc2 are the same kernels compiled
// differently — they must compute the same outputs (store traces may
// legitimately differ in count because pointer-walk styles differ, but
// here both perform identical stores).
func TestStylesAgree(t *testing.T) {
	v1 := workload.VALcc1()
	v2 := workload.VALcc2()
	if len(v1.Funcs) != len(v2.Funcs) {
		t.Fatal("suites differ in length")
	}
	for i := range v1.Funcs {
		for _, args := range argSets {
			r1, err := ir.Exec(v1.Funcs[i], args, 300000)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := ir.Exec(v2.Funcs[i], args, 300000)
			if err != nil {
				t.Fatal(err)
			}
			if !r1.Equal(r2) {
				t.Fatalf("%s vs %s disagree on %v:\nA=%+v\nB=%+v",
					v1.Funcs[i].Name, v2.Funcs[i].Name, args, r1, r2)
			}
		}
	}
}

// TestSuitesThroughPipelines: every suite function survives every
// experiment configuration with identical behaviour. SPECint is sampled
// to keep the test fast; the full population runs in the bench harness.
func TestSuitesThroughPipelines(t *testing.T) {
	type entry struct {
		suite string
		idx   int
		mk    func() *ir.Func
	}
	var entries []entry
	mkSuite := func(name string, build func() *workload.Suite) {
		n := len(build().Funcs)
		step := 1
		if name == "SPECint" {
			step = 10
		}
		for i := 0; i < n; i += step {
			i := i
			entries = append(entries, entry{name, i, func() *ir.Func {
				return build().Funcs[i]
			}})
		}
	}
	mkSuite("VALcc1", workload.VALcc1)
	mkSuite("VALcc2", workload.VALcc2)
	mkSuite("example1-8", workload.Examples)
	mkSuite("LAI_Large", workload.LAILarge)
	mkSuite("SPECint", workload.SPECint)

	for _, e := range entries {
		ref := e.mk()
		want, err := ir.Exec(ref, argSets[2], 300000)
		if err != nil {
			t.Fatal(err)
		}
		for name, conf := range pipeline.Configs {
			f := e.mk()
			if _, err := pipeline.Run(f, conf); err != nil {
				t.Fatalf("%s[%d]/%s: %v", e.suite, e.idx, name, err)
			}
			got, err := ir.Exec(f, argSets[2], 600000)
			if err != nil {
				t.Fatalf("%s[%d]/%s: %v", e.suite, e.idx, name, err)
			}
			if !want.Equal(got) {
				t.Fatalf("%s[%d] (%s): %s changed behaviour\n%s",
					e.suite, e.idx, ref.Name, name, f)
			}
		}
	}
}

// TestPaperShapeOnSuites asserts the paper's headline orderings on the
// kernel suites (where the margins actually live):
//
//	Table 2: Lφ+C <= C and roughly <= Sφ+C;
//	Table 3: Lφ,ABI+C strictly best;
//	Table 4: naive φ and naive ABI each cost much more.
func TestPaperShapeOnSuites(t *testing.T) {
	sum := func(build func() *workload.Suite, exp string) int {
		total := 0
		for i := range build().Funcs {
			f := build().Funcs[i]
			r, err := pipeline.Run(f, pipeline.Configs[exp])
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, exp, err)
			}
			total += r.Moves
		}
		return total
	}
	for _, build := range []func() *workload.Suite{workload.VALcc1, workload.VALcc2, workload.LAILarge} {
		name := build().Name
		lphiC := sum(build, pipeline.ExpLphiC)
		c := sum(build, pipeline.ExpC2)
		if lphiC > c {
			t.Errorf("%s: Lφ+C (%d) worse than C (%d) — Table 2 shape broken", name, lphiC, c)
		}
		lphiABIC := sum(build, pipeline.ExpLphiABIC)
		for _, other := range []string{pipeline.ExpSphiLABIC, pipeline.ExpLABIC, pipeline.ExpC3} {
			o := sum(build, other)
			if lphiABIC > o {
				t.Errorf("%s: Lφ,ABI+C (%d) worse than %s (%d) — Table 3 shape broken",
					name, lphiABIC, other, o)
			}
		}
		full := sum(build, pipeline.ExpLphiABI)
		sphi := sum(build, pipeline.ExpSphi)
		labi := sum(build, pipeline.ExpLABI)
		if sphi < full || labi < full {
			t.Errorf("%s: Table 4 shape broken: full=%d sphi=%d labi=%d", name, full, sphi, labi)
		}
	}
}
