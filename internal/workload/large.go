package workload

import "outofssa/internal/ir"

// buildLarge assembles the LAI_Large stand-in: vocoder-style functions
// (the paper's LAI_Large mostly comes from the ETSI EFR 5.1.0 speech
// coder). Deep loop nests, long accumulator chains, helper calls.
func buildLarge() []*ir.Func {
	return []*ir.Func{
		lAutocorr(), lLevinson(), lLagWindow(), lChebyshevEval(),
		lPitchOL(), lCodebookSearch(), lSynthesisFilter(),
		lResidualFilter(), lGainQuant(), lInterpolateLSP(), lAGC(),
		lVADDecision(),
	}
}

// lAutocorr computes 8 autocorrelation lags of a frame.
func lAutocorr() *ir.Func {
	k := newKB("autocorr", styleA)
	ps := k.params("px", "pr", "n")
	px, pr, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	lags := k.num(8)
	wr := k.walker(pr)
	k.loop(lags, func(lag ir.ValueID) {
		acc := k.Val("acc")
		k.Const(acc, 0)
		k.loop(n, func(i ir.ValueID) {
			x := k.Val("")
			k.Load(x, k.addr(px, i))
			j := k.binOpFresh(ir.Add, i, lag)
			y := k.Val("")
			k.Load(y, k.addr(px, j))
			k.macc(acc, x, y)
		})
		// Normalize to avoid overflow, as the EFR code does.
		sh := k.binOp(ir.Shr, acc, k.num(4))
		k.storeStep(wr, sh, 1)
	})
	r0 := k.Val("r0")
	k.Load(r0, pr)
	return k.ret(r0)
}

// lLevinson runs an order-4 integer Levinson-Durbin recursion.
func lLevinson() *ir.Func {
	k := newKB("levinson", styleA)
	ps := k.params("pr", "pa")
	pr, pa := ps[0], ps[1]
	order := k.num(4)
	one := k.num(1)

	err := k.Val("err")
	k.Load(err, pr)
	k.Binary(ir.Max, err, err, one) // keep the divisor sane

	// a[0] = 1 (fixed point 1<<12)
	k.Store(pa, k.num(1<<12))

	k.loop(order, func(i ir.ValueID) {
		i1 := k.binOpFresh(ir.Add, i, one)
		// acc = r[i+1] + sum_{j=1..i} a[j]*r[i+1-j]
		acc := k.Val("acc")
		k.Load(acc, k.addr(pr, i1))
		k.Binary(ir.Shl, acc, acc, k.num(12))
		k.loop(i1, func(j ir.ValueID) {
			nz := k.binOpFresh(ir.CmpGT, j, k.num(0))
			k.ifElse(nz, func() {
				aj := k.Val("")
				k.Load(aj, k.addr(pa, j))
				d := k.binOpFresh(ir.Sub, i1, j)
				rj := k.Val("")
				k.Load(rj, k.addr(pr, d))
				k.macc(acc, aj, rj)
			}, nil)
		})
		// reflection coefficient rc = -acc / err
		rc := k.binOpFresh(ir.Div, acc, err)
		nrc := k.Val("")
		k.Unary(ir.Neg, nrc, rc)
		k.Store(k.addr(pa, i1), nrc)
		// err = err * (1 - rc^2) >> 12 (approximated)
		rc2 := k.binOpFresh(ir.Mul, nrc, nrc)
		k.Binary(ir.Shr, rc2, rc2, k.num(12))
		red := k.binOpFresh(ir.Sub, k.num(1<<12), rc2)
		k.Binary(ir.Mul, err, err, red)
		k.Binary(ir.Shr, err, err, k.num(12))
		k.Binary(ir.Max, err, err, one)
	})
	a1 := k.Val("a1")
	k.Load(a1, k.addr(pa, one))
	return k.ret(a1)
}

// lLagWindow applies a lag window table to the autocorrelations.
func lLagWindow() *ir.Func {
	k := newKB("lag_window", styleA)
	ps := k.params("pr", "pw", "n")
	pr, pw, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 12)
	wr, ww := k.walker(pr), k.walker(pw)
	peak := k.Val("peak")
	k.Const(peak, 1)
	k.loop(n, func(i ir.ValueID) {
		r := k.Val("")
		k.Load(r, wr)
		w := k.loadStep(ww, 1)
		t := k.binOpFresh(ir.Mul, r, w)
		k.Binary(ir.Shr, t, t, k.num(15))
		k.storeStep(wr, t, 1)
		neg := k.binOpFresh(ir.CmpLT, t, k.num(0))
		nt := k.Val("")
		k.Unary(ir.Neg, nt, t)
		at := k.Val("")
		k.Select(at, neg, nt, t)
		k.Binary(ir.Max, peak, peak, at)
	})
	// Normalization pass, as Lag_window's caller does in the EFR code.
	wr2 := k.walker(pr)
	k.loop(n, func(i ir.ValueID) {
		r := k.Val("")
		k.Load(r, wr2)
		sc := k.binOpFresh(ir.Shl, r, k.num(4))
		q := k.binOpFresh(ir.Div, sc, peak)
		k.storeStep(wr2, q, 1)
	})
	first := k.Val("")
	k.Load(first, pr)
	return k.ret(first, peak)
}

// lChebyshevEval evaluates a Chebyshev polynomial grid scan (the LSP
// root search shape of az_lsp): an outer grid loop with an inner
// recurrence, tracking sign changes.
func lChebyshevEval() *ir.Func {
	k := newKB("cheb_eval", styleA)
	ps := k.params("pf", "order")
	pf, order := ps[0], ps[1]
	order = k.clampN(order, 6)
	grid := k.num(16)
	signChanges := k.Val("sc")
	k.Const(signChanges, 0)
	prev := k.Val("prev")
	k.Const(prev, 0)
	one := k.num(1)
	k.loop(grid, func(g ir.ValueID) {
		x := k.binOpFresh(ir.Sub, k.num(8), g) // grid point in [-8, 8]
		b1 := k.Val("b1")
		b2 := k.Val("b2")
		k.Const(b1, 0)
		k.Const(b2, 0)
		wf := k.walker(pf)
		k.loop(order, func(j ir.ValueID) {
			f := k.loadStep(wf, 1)
			t := k.binOpFresh(ir.Mul, x, b1)
			k.Binary(ir.Shr, t, t, k.num(2))
			k.Binary(ir.Sub, t, t, b2)
			k.Binary(ir.Add, t, t, f)
			k.Copy(b2, b1)
			k.Copy(b1, t)
		})
		val := k.binOpFresh(ir.Sub, b1, b2)
		neg := k.binOpFresh(ir.CmpLT, val, k.num(0))
		wasNeg := k.binOpFresh(ir.CmpLT, prev, k.num(0))
		diff := k.binOpFresh(ir.CmpNE, neg, wasNeg)
		notFirst := k.binOpFresh(ir.CmpGT, g, k.num(0))
		hit := k.binOpFresh(ir.And, diff, notFirst)
		k.ifElse(hit, func() {
			k.Binary(ir.Add, signChanges, signChanges, one)
		}, nil)
		k.Copy(prev, val)
	})
	return k.ret(signChanges)
}

// lPitchOL is the open-loop pitch search: for each candidate lag, a
// correlation and an energy, maximizing corr^2/energy via helper calls.
func lPitchOL() *ir.Func {
	k := newKB("pitch_ol", styleA)
	ps := k.params("px", "n", "minLag", "maxLag")
	px, n := ps[0], ps[1]
	n = k.clampN(n, 12)
	minLag := k.num(2)
	maxLag := k.num(8)
	span := k.binOpFresh(ir.Sub, maxLag, minLag)

	bestLag := k.Val("bestLag")
	bestScore := k.Val("bestScore")
	k.Copy(bestLag, minLag)
	k.Const(bestScore, -(1 << 30))

	k.loop(span, func(d ir.ValueID) {
		lag := k.binOpFresh(ir.Add, minLag, d)
		corr := k.Val("corr")
		en := k.Val("en")
		k.Const(corr, 0)
		k.Const(en, 0)
		k.loop(n, func(i ir.ValueID) {
			x := k.Val("")
			k.Load(x, k.addr(px, i))
			j := k.binOpFresh(ir.Add, i, lag)
			y := k.Val("")
			k.Load(y, k.addr(px, j))
			k.macc(corr, x, y)
			k.macc(en, y, y)
		})
		score := k.Val("score")
		k.Call("norm_score", []ir.ValueID{score}, corr, en)
		better := k.binOpFresh(ir.CmpGT, score, bestScore)
		k.ifElse(better, func() {
			k.Copy(bestScore, score)
			k.Copy(bestLag, lag)
		}, nil)
	})
	return k.ret(bestLag, bestScore)
}

// lCodebookSearch scans 8 codebook vectors for the best match.
func lCodebookSearch() *ir.Func {
	k := newKB("codebook_search", styleA)
	ps := k.params("px", "pcb", "n")
	px, pcb, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 8)
	words := k.num(8)
	bestIdx := k.Val("bestIdx")
	bestScore := k.Val("bestScore")
	k.Const(bestIdx, 0)
	k.Const(bestScore, -(1 << 30))
	k.loop(words, func(w ir.ValueID) {
		base := k.binOpFresh(ir.Mul, w, n)
		cw := k.addr(pcb, base)
		corr := k.Val("corr")
		en := k.Val("en")
		k.Const(corr, 0)
		k.Const(en, 1)
		wx, wc := k.walker(px), k.walker(cw)
		k.loop(n, func(i ir.ValueID) {
			x := k.loadStep(wx, 1)
			c := k.loadStep(wc, 1)
			k.macc(corr, x, c)
			k.macc(en, c, c)
		})
		num := k.binOpFresh(ir.Mul, corr, corr)
		score := k.binOp(ir.Div, num, en)
		better := k.binOpFresh(ir.CmpGT, score, bestScore)
		k.ifElse(better, func() {
			k.Copy(bestScore, score)
			k.Copy(bestIdx, w)
		}, nil)
	})
	return k.ret(bestIdx, bestScore)
}

// lSynthesisFilter runs the order-4 IIR synthesis filter.
func lSynthesisFilter() *ir.Func {
	k := newKB("syn_filt", styleA)
	ps := k.params("pa", "px", "py", "n")
	pa, px, py, n := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 12)
	four := k.num(4)
	one := k.num(1)
	wx, wy := k.walker(px), k.walker(py)
	k.loop(n, func(i ir.ValueID) {
		acc := k.Val("acc")
		x := k.loadStep(wx, 1)
		k.Copy(acc, x)
		k.Binary(ir.Shl, acc, acc, k.num(12))
		k.loop(four, func(j ir.ValueID) {
			j1 := k.binOpFresh(ir.Add, j, one)
			inRange := k.binOpFresh(ir.CmpGE, k.binOpFresh(ir.Sub, i, j1), k.num(0))
			k.ifElse(inRange, func() {
				aj := k.Val("")
				k.Load(aj, k.addr(pa, j1))
				d := k.binOpFresh(ir.Sub, i, j1)
				yd := k.Val("")
				k.Load(yd, k.addr(py, d))
				t := k.binOpFresh(ir.Mul, aj, yd)
				k.Binary(ir.Sub, acc, acc, t)
			}, nil)
		})
		out := k.binOp(ir.Shr, acc, k.num(12))
		k.storeStep(wy, out, 1)
	})
	return k.ret(wy)
}

// lResidualFilter runs the order-4 FIR analysis filter.
func lResidualFilter() *ir.Func {
	k := newKB("residu", styleA)
	ps := k.params("pa", "px", "py", "n")
	pa, px, py, n := ps[0], ps[1], ps[2], ps[3]
	n = k.clampN(n, 12)
	four := k.num(4)
	wy := k.walker(py)
	k.loop(n, func(i ir.ValueID) {
		acc := k.Val("acc")
		x0 := k.Val("")
		k.Load(x0, k.addr(px, i))
		k.Copy(acc, x0)
		k.Binary(ir.Shl, acc, acc, k.num(12))
		k.loop(four, func(j ir.ValueID) {
			aj := k.Val("")
			k.Load(aj, k.addr(pa, j))
			d := k.binOpFresh(ir.Sub, i, j)
			xd := k.Val("")
			k.Load(xd, k.addr(px, d))
			k.macc(acc, aj, xd)
		})
		out := k.binOp(ir.Shr, acc, k.num(12))
		k.storeStep(wy, out, 1)
	})
	return k.ret(wy)
}

// lGainQuant searches a 16-entry gain table for the closest entry.
func lGainQuant() *ir.Func {
	k := newKB("gain_quant", styleA)
	ps := k.params("g", "ptab")
	g, ptab := ps[0], ps[1]
	entries := k.num(16)
	bestIdx := k.Val("bestIdx")
	bestDist := k.Val("bestDist")
	k.Const(bestIdx, 0)
	k.Const(bestDist, 1<<30)
	wt := k.walker(ptab)
	k.loop(entries, func(i ir.ValueID) {
		t := k.loadStep(wt, 1)
		d := k.binOpFresh(ir.Sub, t, g)
		neg := k.binOpFresh(ir.CmpLT, d, k.num(0))
		nd := k.Val("")
		k.Unary(ir.Neg, nd, d)
		ad := k.Val("")
		k.Select(ad, neg, nd, d)
		better := k.binOpFresh(ir.CmpLT, ad, bestDist)
		k.ifElse(better, func() {
			k.Copy(bestDist, ad)
			k.Copy(bestIdx, i)
		}, nil)
	})
	q := k.Val("q")
	k.Load(q, k.addr(ptab, bestIdx))
	return k.ret(bestIdx, q)
}

// lInterpolateLSP interpolates LSP vectors over 4 subframes.
func lInterpolateLSP() *ir.Func {
	k := newKB("int_lsp", styleA)
	ps := k.params("pold", "pnew", "pout")
	pold, pnew, pout := ps[0], ps[1], ps[2]
	subframes := k.num(4)
	order := k.num(10)
	wout := k.walker(pout)
	k.loop(subframes, func(s ir.ValueID) {
		// weight = (s+1) / 4 in Q2
		one := k.num(1)
		wNew := k.binOpFresh(ir.Add, s, one)
		wOld := k.binOpFresh(ir.Sub, k.num(4), wNew)
		k.loop(order, func(j ir.ValueID) {
			o := k.Val("")
			k.Load(o, k.addr(pold, j))
			nw := k.Val("")
			k.Load(nw, k.addr(pnew, j))
			acc := k.Val("acc")
			k.Binary(ir.Mul, acc, o, wOld)
			k.macc(acc, nw, wNew)
			k.Binary(ir.Shr, acc, acc, k.num(2))
			k.storeStep(wout, acc, 1)
		})
	})
	return k.ret(wout)
}

// lAGC: two-pass automatic gain control with an isqrt helper call.
func lAGC() *ir.Func {
	k := newKB("agc", styleA)
	ps := k.params("px", "py", "n")
	px, py, n := ps[0], ps[1], ps[2]
	n = k.clampN(n, 12)
	eIn := k.Val("eIn")
	eOut := k.Val("eOut")
	k.Const(eIn, 1)
	k.Const(eOut, 1)
	wx, wy := k.walker(px), k.walker(py)
	k.loop(n, func(i ir.ValueID) {
		x := k.loadStep(wx, 1)
		y := k.loadStep(wy, 1)
		k.macc(eIn, x, x)
		k.macc(eOut, y, y)
	})
	ratio := k.binOpFresh(ir.Div, eIn, eOut)
	gain := k.Val("gain")
	k.Call("isqrt", []ir.ValueID{gain}, ratio)
	wy2 := k.walker(py)
	k.loop(n, func(i ir.ValueID) {
		y := k.Val("")
		k.Load(y, wy2)
		t := k.binOpFresh(ir.Mul, y, gain)
		k.Binary(ir.Shr, t, t, k.num(6))
		k.storeStep(wy2, t, 1)
	})
	return k.ret(gain)
}

// lVADDecision: voice activity decision over band energies, with
// hysteresis state threading through the loop.
func lVADDecision() *ir.Func {
	k := newKB("vad", styleA)
	ps := k.params("pe", "n", "thr")
	pe, n, thr := ps[0], ps[1], ps[2]
	n = k.clampN(n, 16)
	active := k.Val("active")
	hang := k.Val("hang")
	count := k.Val("count")
	k.Const(active, 0)
	k.Const(hang, 0)
	k.Const(count, 0)
	one := k.num(1)
	we := k.walker(pe)
	k.loop(n, func(i ir.ValueID) {
		e := k.loadStep(we, 1)
		hi := k.binOpFresh(ir.CmpGT, e, thr)
		k.ifElse(hi, func() {
			k.Const(active, 1)
			k.Const(hang, 4)
			k.Binary(ir.Add, count, count, one)
		}, func() {
			pos := k.binOpFresh(ir.CmpGT, hang, k.num(0))
			k.ifElse(pos, func() {
				k.Binary(ir.Sub, hang, hang, one)
			}, func() {
				k.Const(active, 0)
			})
		})
	})
	return k.ret(active, count)
}
