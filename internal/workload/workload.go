// Package workload builds the five benchmark suites of the paper's
// evaluation, substituted as described in DESIGN.md:
//
//   - VALcc1/VALcc2 — ~40 small DSP/sort/search/string kernels compiled by
//     two different lowering styles (standing in for the two ST120 C
//     compilers);
//   - Examples — the paper's own hand-crafted scenarios (example1-8);
//   - LAILarge — larger vocoder-like functions (autocorrelation,
//     Levinson-Durbin, pitch and codebook search, filters) standing in
//     for the ETSI EFR 5.1.0 material;
//   - SPECint — a large population of seeded random control-flow-heavy
//     functions standing in for SPEC CINT2000.
//
// Every constructor builds fresh ir.Func values: the pipelines mutate
// their input, so each experiment gets its own copy.
package workload

import (
	"fmt"

	"outofssa/internal/ir"
	"outofssa/internal/testprog"
)

// Suite is a named list of freshly built functions.
type Suite struct {
	Name  string
	Funcs []*ir.Func
}

// NumInstrs totals the instruction count across the suite.
func (s *Suite) NumInstrs() int {
	n := 0
	for _, f := range s.Funcs {
		n += f.NumInstrs()
	}
	return n
}

// VALcc1 builds the kernel set with lowering style A (mac-fused,
// pointer auto-increment, fresh temporaries).
func VALcc1() *Suite {
	return &Suite{Name: "VALcc1", Funcs: buildKernels(styleA)}
}

// VALcc2 builds the same kernels with lowering style B (mul+add, indexed
// addressing, reused scratch variables, parameter home copies) — the
// "other compiler".
func VALcc2() *Suite {
	return &Suite{Name: "VALcc2", Funcs: buildKernels(styleB)}
}

// Examples builds example1-8: the paper's hand-crafted figures as
// runnable programs.
func Examples() *Suite {
	return &Suite{Name: "example1-8", Funcs: buildExamples()}
}

// LAILarge builds the vocoder-like large-function suite.
func LAILarge() *Suite {
	return &Suite{Name: "LAI_Large", Funcs: buildLarge()}
}

// SPECintFuncs controls the size of the synthetic SPECint population.
const SPECintFuncs = 120

// SPECint builds the synthetic SPEC CINT2000 stand-in: many larger
// random structured functions (seeded, reproducible).
func SPECint() *Suite {
	// Shallow mutable-variable pool with deeper control flow: compiled
	// integer code has thin φ webs (few variables reassigned across many
	// joins), which is the population the paper's greedy operates on.
	opt := testprog.RandOptions{
		MaxDepth:      5,
		Vars:          5,
		StmtsPerBlock: 5,
		Calls:         true,
		Stack:         true,
	}
	var funcs []*ir.Func
	for seed := int64(0); seed < SPECintFuncs; seed++ {
		f := testprog.Rand(1000+seed, opt)
		f.Name = fmt.Sprintf("synth%03d", seed)
		funcs = append(funcs, f)
	}
	return &Suite{Name: "SPECint", Funcs: funcs}
}

// All builds every suite in the paper's presentation order.
func All() []*Suite {
	return []*Suite{VALcc1(), VALcc2(), Examples(), LAILarge(), SPECint()}
}
