package workload

import "outofssa/internal/ir"

// style captures the lowering decisions that differ between the two
// "compilers" producing VALcc1 and VALcc2.
type style struct {
	name string
	// mac fuses multiply-accumulate into the 2-operand Mac instruction;
	// otherwise mul+add pairs are emitted.
	mac bool
	// autoInc walks arrays with 2-operand AutoAdd pointer updates;
	// otherwise base+index adds are used.
	autoInc bool
	// homeCopies copies incoming parameters into local homes first (some
	// compilers do this for debug-ability), creating extra coalescing
	// opportunities.
	homeCopies bool
	// rotate emits do-while style loops with a guard test, changing the
	// confluence-point structure and hence the φ webs.
	rotate bool
}

var (
	styleA = style{name: "A", mac: true, autoInc: true}
	styleB = style{name: "B", homeCopies: true, rotate: true}
)

// kb is the kernel builder: ir.Builder plus style-directed helpers.
type kb struct {
	*ir.Builder
	st style
}

func newKB(name string, st style) *kb {
	b := ir.NewBuilder(name + "_" + st.name)
	return &kb{Builder: b, st: st}
}

// param declares the function parameters (and SP when stack is needed).
func (k *kb) params(names ...string) []ir.ValueID {
	vs := make([]ir.ValueID, len(names))
	for i, n := range names {
		vs[i] = k.Val(n)
	}
	k.Block("entry")
	in := k.Input(vs...)
	if k.st.homeCopies {
		for i, v := range vs {
			home := k.Val(names[i] + "_h")
			k.Copy(home, v)
			vs[i] = home
		}
	}
	_ = in
	return vs
}

// num materializes a constant.
func (k *kb) num(v int64) ir.ValueID {
	c := k.Val("")
	k.Const(c, v)
	return c
}

// temp returns a fresh destination for an intermediate result.
func (k *kb) temp() ir.ValueID {
	return k.Val("")
}

// binOp emits d = a op b into a style-chosen destination.
func (k *kb) binOp(op ir.Op, a, b ir.ValueID) ir.ValueID {
	d := k.temp()
	k.Binary(op, d, a, b)
	return d
}

// macc emits acc += a*b per style: fused Mac (2-operand) or mul+add.
func (k *kb) macc(acc, a, b ir.ValueID) {
	if k.st.mac {
		k.Mac(acc, acc, a, b)
		return
	}
	t := k.temp()
	k.Binary(ir.Mul, t, a, b)
	k.Binary(ir.Add, acc, acc, t)
}

// loadStep loads *p and advances p by step per style: AutoAdd on the
// pointer, or an explicit base+offset add.
func (k *kb) loadStep(p ir.ValueID, step int64) ir.ValueID {
	d := k.Val("")
	k.Load(d, p)
	if k.st.autoInc {
		k.AutoAdd(p, p, step)
	} else {
		s := k.num(step)
		k.Binary(ir.Add, p, p, s)
	}
	return d
}

// storeStep stores v to *p and advances p.
func (k *kb) storeStep(p, v ir.ValueID, step int64) {
	k.Store(p, v)
	if k.st.autoInc {
		k.AutoAdd(p, p, step)
	} else {
		s := k.num(step)
		k.Binary(ir.Add, p, p, s)
	}
}

// loop emits a counted loop `for i = 0; i < n; i++ { body(i) }`. Style A
// tests at the top; style B emits a guarded do-while (rotated) loop. The
// builder is left in the exit block.
func (k *kb) loop(n ir.ValueID, body func(i ir.ValueID)) {
	f := k.Fn
	i := k.Val("")
	one := k.num(1)
	k.Const(i, 0)

	if k.st.rotate {
		bodyB := f.NewBlock("")
		exit := f.NewBlock("")
		g := k.Val("")
		k.Binary(ir.CmpLT, g, i, n)
		k.Br(g, bodyB, exit)

		k.SetBlock(bodyB)
		body(i)
		k.Binary(ir.Add, i, i, one)
		c := k.Val("")
		k.Binary(ir.CmpLT, c, i, n)
		k.Br(c, bodyB, exit)

		k.SetBlock(exit)
		return
	}

	head := f.NewBlock("")
	bodyB := f.NewBlock("")
	exit := f.NewBlock("")
	k.Jump(head)

	k.SetBlock(head)
	c := k.Val("")
	k.Binary(ir.CmpLT, c, i, n)
	k.Br(c, bodyB, exit)

	k.SetBlock(bodyB)
	body(i)
	k.Binary(ir.Add, i, i, one)
	k.Jump(head)

	k.SetBlock(exit)
}

// loopDown emits `for i = n-1; i >= 0; i--`.
func (k *kb) loopDown(n ir.ValueID, body func(i ir.ValueID)) {
	f := k.Fn
	i := k.Val("")
	one := k.num(1)
	zero := k.num(0)
	k.Binary(ir.Sub, i, n, one)

	head := f.NewBlock("")
	bodyB := f.NewBlock("")
	exit := f.NewBlock("")
	k.Jump(head)

	k.SetBlock(head)
	c := k.Val("")
	k.Binary(ir.CmpGE, c, i, zero)
	k.Br(c, bodyB, exit)

	k.SetBlock(bodyB)
	body(i)
	k.Binary(ir.Sub, i, i, one)
	k.Jump(head)

	k.SetBlock(exit)
}

// ifElse emits a two-way conditional; both arms run with the builder
// positioned in their block, and the builder ends in the join block.
func (k *kb) ifElse(cond ir.ValueID, then, els func()) {
	f := k.Fn
	tb := f.NewBlock("")
	join := f.NewBlock("")
	if els == nil {
		k.Br(cond, tb, join)
		k.SetBlock(tb)
		then()
		k.Jump(join)
	} else {
		eb := f.NewBlock("")
		k.Br(cond, tb, eb)
		k.SetBlock(tb)
		then()
		k.Jump(join)
		k.SetBlock(eb)
		els()
		k.Jump(join)
	}
	k.SetBlock(join)
}

// ret finishes the function.
func (k *kb) ret(vals ...ir.ValueID) *ir.Func {
	k.Output(vals...)
	if err := k.Fn.Verify(); err != nil {
		panic("workload: " + k.Fn.Name + ": " + err.Error())
	}
	return k.Fn
}

// addr computes base+idx (element size 1 for simplicity).
func (k *kb) addr(base, idx ir.ValueID) ir.ValueID {
	return k.binOpFresh(ir.Add, base, idx)
}

// binOpFresh always uses a fresh destination (for values that must stay
// live across scratch reuse).
func (k *kb) binOpFresh(op ir.Op, a, b ir.ValueID) ir.ValueID {
	d := k.Val("")
	k.Binary(op, d, a, b)
	return d
}
