// Package verify is the checked-mode IR verifier of the out-of-SSA
// pipeline. It re-checks, between passes, the invariants the paper's
// correctness argument rests on:
//
//   - structural well-formedness (CFG edge symmetry, terminator
//     placement, φ prefix and arity, operand ownership — ir.Func.Verify);
//   - handle-table coherence: block and instruction handles resolve to
//     the entries that carry them, the assumption every liveness/
//     dominator/interference cache in the repository is built on;
//   - parallel-copy consistency (paired slots, no duplicated
//     destination — parcopy.Check);
//   - SSA form: single definitions and dominance of uses (ssa.Verify);
//   - pin legality: the Figure 4 pinning rules (pin.Validate) plus the
//     paper's central safety claim — no two variables pinned to one
//     resource may *strongly* interfere (Classes 3–4,
//     Variable_stronglyInterfere). Simple interferences (Classes 1–2)
//     are legal: the out-of-pinned-SSA translation repairs them.
//
// The verifier only reads the IR; running it can never change codegen.
// internal/pipeline invokes it after every pass when Config.Verify is
// set, converting violations into *pipeline.PassError values.
package verify

import (
	"fmt"

	"outofssa/internal/analysis"
	"outofssa/internal/interference"
	"outofssa/internal/ir"
	"outofssa/internal/parcopy"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
)

// Stage names the pipeline position a function is verified at: the
// invariants that must hold depend on whether the function is still in
// SSA form.
type Stage int

const (
	// StageSSA covers every pass from SSA construction up to and
	// including the pinning phases: the function must be structurally
	// well formed, in SSA form, and its pins must be legal.
	StageSSA Stage = iota
	// StagePostSSA covers the out-of-SSA translation and everything
	// after it: structural invariants still hold, and no φ or parallel
	// copy may remain.
	StagePostSSA
)

func (s Stage) String() string {
	if s == StagePostSSA {
		return "post-ssa"
	}
	return "ssa"
}

// Func runs every invariant check appropriate for the stage on f and
// returns the first violation found, or nil. It never mutates f.
func Func(f *ir.Func, stage Stage) error {
	if err := f.Verify(); err != nil {
		return fmt.Errorf("structure: %w", err)
	}
	if err := checkDenseTables(f); err != nil {
		return fmt.Errorf("tables: %w", err)
	}
	if err := checkParCopies(f); err != nil {
		return err
	}
	switch stage {
	case StageSSA:
		if err := ssa.Verify(f); err != nil {
			return fmt.Errorf("ssa: %w", err)
		}
		if err := checkPins(f); err != nil {
			return fmt.Errorf("pins: %w", err)
		}
	case StagePostSSA:
		if err := checkTranslated(f); err != nil {
			return err
		}
	default:
		return fmt.Errorf("verify: unknown stage %d", stage)
	}
	return nil
}

// checkDenseTables asserts the handle coherence every dense cache in
// the repository assumes: every block in the ordered block list is
// reachable through its own handle, block IDs are unique and below
// NumBlocks, and every instruction reached through a block resolves
// back to itself through f.Instr. Liveness bitsets, dominator arrays
// and interference def tables are all sized by NumValues/NumBlocks and
// indexed by handle; corrupting this mapping silently aliases unrelated
// variables in every later analysis.
func checkDenseTables(f *ir.Func) error {
	if f.NumValues() < 0 {
		return fmt.Errorf("%s: negative value count", f.Name)
	}
	seen := make(map[ir.BlockID]*ir.Block, len(f.Blocks()))
	for _, b := range f.Blocks() {
		if int(b.ID) < 0 || int(b.ID) >= f.NumBlocks() {
			return fmt.Errorf("%s: block %v has ID %d outside [0,%d)", f.Name, b, b.ID, f.NumBlocks())
		}
		if prev, dup := seen[b.ID]; dup {
			return fmt.Errorf("%s: blocks %v and %v share ID %d", f.Name, prev, b, b.ID)
		}
		seen[b.ID] = b
		if f.Block(b.ID) != b {
			return fmt.Errorf("%s: block %v does not resolve through its handle %d", f.Name, b, b.ID)
		}
		for _, in := range b.Instrs() {
			if f.Instr(in.ID()) != in {
				return fmt.Errorf("%s: instruction %q does not resolve through its handle %d", f.Name, in, in.ID())
			}
		}
	}
	return nil
}

// checkParCopies validates every parallel copy in the function.
func checkParCopies(f *ir.Func) error {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			if in.Op() != ir.ParCopy {
				continue
			}
			if err := parcopy.Check(in); err != nil {
				return fmt.Errorf("block %v: %w", b, err)
			}
		}
	}
	return nil
}

// checkPins verifies pin legality: resource classes are buildable (no
// two dedicated registers merged), the Figure 4 textual rules hold, and
// no resource class contains a strongly interfering pair — the claim
// that pinning-based coalescing never produces incorrect code.
func checkPins(f *ir.Func) error {
	if f.CountPins() == 0 {
		return nil
	}
	res, err := pin.NewResources(f)
	if err != nil {
		return err
	}
	if err := pin.Validate(f, res); err != nil {
		return err
	}
	// Strong interference scan: only multi-member classes can violate it.
	var an *interference.Analysis
	for _, root := range res.Roots() {
		members := res.Members(root)
		virt := members[:0:0]
		for _, m := range members {
			if !f.IsPhys(m) {
				virt = append(virt, m)
			}
		}
		if len(virt) < 2 {
			continue
		}
		if an == nil {
			live := analysis.Liveness(f)
			an = interference.New(f, live, analysis.Dominators(f), interference.Exact)
		}
		for i := 0; i < len(virt); i++ {
			for j := i + 1; j < len(virt); j++ {
				if an.StronglyInterfere(virt[i], virt[j]) {
					return fmt.Errorf("%s: %v and %v pinned to resource %v but strongly interfere (Classes 3-4)",
						f.Name, f.VStr(virt[i]), f.VStr(virt[j]), f.VStr(res.Find(root)))
				}
			}
		}
	}
	return nil
}

// checkTranslated asserts the out-of-SSA postcondition: no φ and no
// parallel copy survives (ParCopy sequentialization is part of the
// translation contract).
func checkTranslated(f *ir.Func) error {
	for _, b := range f.Blocks() {
		for _, in := range b.Instrs() {
			switch in.Op() {
			case ir.Phi:
				return fmt.Errorf("%s: φ %q survived out-of-SSA translation in %v", f.Name, in, b)
			case ir.ParCopy:
				return fmt.Errorf("%s: parallel copy %q not sequentialized in %v", f.Name, in, b)
			}
		}
	}
	return nil
}
