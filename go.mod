module outofssa

go 1.23
