module outofssa

go 1.22
