// dspkernel runs a realistic DSP kernel (a FIR filter with 2-operand
// pointer auto-increment and a multiply-accumulate chain) through every
// experiment configuration and compares the resulting move counts —
// a one-function preview of the paper's Tables 2-4.
package main

import (
	"fmt"
	"log"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/pipeline"
)

const fir = `
.func fir8
.input px:P0, ph:P1, n:R0
entry:
    const  y, 0
    const  i, 0
    const  eight, 8
    min    n, n, eight
outer:
    blt    i, n, body
    ret    y
body:
    mov    xp, px
    mov    hp, ph
    add    xp, xp, i
    const  acc, 0
    const  j, 0
    const  four, 4
inner:
    blt    j, four, tap
    add    y, y, acc
    const  one2, 1
    add    i, i, one2
    jump   outer
tap:
    load   xv, @xp
    autoadd xp, xp, 1
    load   hv, @hp
    autoadd hp, hp, 1
    mac    acc, acc, xv, hv
    const  one, 1
    add    j, j, one
    jump   inner
.endfunc
`

func main() {
	base, err := lai.Parse(fir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("---- FIR kernel (LAI) ----")
	fmt.Print(base)

	args := []int64{1000, 2000, 6}
	want, err := ir.Exec(base.Clone(), args, 200000)
	if err != nil {
		log.Fatal(err)
	}

	names := pipeline.Presets()

	fmt.Printf("\n%-14s %8s %10s\n", "experiment", "moves", "weighted")
	var best string
	bestMoves := 1 << 30
	for _, name := range names {
		f := base.Clone()
		res, err := pipeline.Run(f, pipeline.Configs[name])
		if err != nil {
			log.Fatal(err)
		}
		got, err := ir.Exec(f, args, 400000)
		if err != nil {
			log.Fatal(err)
		}
		if !want.Equal(got) {
			log.Fatalf("%s changed the kernel's behaviour", name)
		}
		fmt.Printf("%-14s %8d %10d\n", name, res.Moves, res.WeightedMoves)
		if res.Moves < bestMoves {
			bestMoves, best = res.Moves, name
		}
	}
	fmt.Printf("\nbest: %s with %d moves (all configurations verified against the interpreter)\n",
		best, bestMoves)

	f := base.Clone()
	if _, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC]); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n---- final code under Lphi,ABI+C ----")
	fmt.Print(f)
}
