// abicall reproduces the paper's Figure 1 and Figure 3 scenarios from
// LAI text: function parameter passing rules, a 2-operand autoadd, a
// make/more immediate pair, and a value that must be repaired because a
// call result evicts it from R0.
package main

import (
	"fmt"
	"log"

	"outofssa/internal/ir"
	"outofssa/internal/lai"
	"outofssa/internal/pipeline"
)

const figure1 = `
.func figure1
.input C:R0, P:P0
entry:
    load    A, @P
    autoadd Q, P, 1
    load    B, @Q
    call    D = f(A, B)
    add     E, C, D
    make    L, 0x00A1
    more    K, L, 0x2BFA
    sub     F, E, K
    ret     F
.endfunc
`

const figure3 = `
.func figure3
.input x, y
entry:
    const k, 3
loop:
    add  y, y, k
    call t = g(x, y)
    blt  t, k, loop
    ret  x
.endfunc
`

func main() {
	for _, src := range []string{figure1, figure3} {
		f, err := lai.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", f.Name)
		fmt.Println("---- LAI input ----")
		fmt.Print(f)

		ref := f.Clone()
		res, err := pipeline.Run(f, pipeline.Configs[pipeline.ExpLphiABIC])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\n---- after Lphi,ABI+C ----")
		fmt.Print(f)
		fmt.Printf("\nmoves=%d  repairs=%d  pin moves=%d  phi move slots=%d\n",
			res.Moves, res.Leung.Repairs, res.Leung.PinMoves, res.Leung.PhiMoves)

		args := []int64{7, 1000}
		want, err := ir.Exec(ref, args, 100000)
		if err != nil {
			log.Fatal(err)
		}
		got, err := ir.Exec(f, args, 200000)
		if err != nil {
			log.Fatal(err)
		}
		status := "MATCH"
		if !want.Equal(got) {
			status = "MISMATCH"
		}
		fmt.Printf("run(%v): %v [%s]\n\n", args, got.Outputs, status)
	}
}
