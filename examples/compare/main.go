// compare runs the paper's hand-crafted figures (the example1-8 suite)
// through the main algorithm comparisons and prints per-example move
// counts — the qualitative claims [CC1], [CS1-3] as a table.
package main

import (
	"fmt"
	"log"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/workload"
)

func main() {
	exps := []string{
		pipeline.ExpLphiABIC,
		pipeline.ExpSphiLABIC,
		pipeline.ExpLABIC,
		pipeline.ExpC3,
	}

	fmt.Printf("%-12s", "example")
	for _, e := range exps {
		fmt.Printf("%14s", e)
	}
	fmt.Println()

	n := len(workload.Examples().Funcs)
	totals := make([]int, len(exps))
	for i := 0; i < n; i++ {
		name := workload.Examples().Funcs[i].Name
		fmt.Printf("%-12s", name)

		ref := workload.Examples().Funcs[i]
		args := []int64{5, 9, 3}
		want, err := ir.Exec(ref, args, 200000)
		if err != nil {
			log.Fatal(err)
		}

		for j, e := range exps {
			f := workload.Examples().Funcs[i]
			res, err := pipeline.Run(f, pipeline.Configs[e])
			if err != nil {
				log.Fatalf("%s/%s: %v", name, e, err)
			}
			got, err := ir.Exec(f, args, 400000)
			if err != nil {
				log.Fatalf("%s/%s: %v", name, e, err)
			}
			if !want.Equal(got) {
				log.Fatalf("%s/%s: behaviour changed", name, e)
			}
			fmt.Printf("%14d", res.Moves)
			totals[j] += res.Moves
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "TOTAL")
	for _, t := range totals {
		fmt.Printf("%14d", t)
	}
	fmt.Println()
	fmt.Println("\n(all outputs verified against the reference interpreter)")
}
