// Quickstart: build a small function with the IR builder, convert it to
// pruned SSA, then let the pipeline run the paper's pinning-based
// coalescing and the out-of-SSA translation, and count the move
// instructions that remain.
package main

import (
	"fmt"
	"log"

	"outofssa/internal/ir"
	"outofssa/internal/pipeline"
	"outofssa/internal/ssa"
)

func main() {
	// sum(n) = 0 + 1 + ... + n-1, as pre-SSA code:
	//
	//   entry: n = input; i = 0; s = 0; jump head
	//   head:  c = i < n; br c -> body, exit
	//   body:  s = s + i; i = i + 1; jump head
	//   exit:  output s
	bld := ir.NewBuilder("sum")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	n, i, s, c, one := bld.Val("n"), bld.Val("i"), bld.Val("s"), bld.Val("c"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(i, 0)
	bld.Const(s, 0)
	bld.Const(one, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, n)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	bld.Binary(ir.Add, s, s, i)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)

	bld.SetBlock(exit)
	bld.Output(s)

	f := bld.Fn
	fmt.Println("---- input (pre-SSA) ----")
	fmt.Print(f)

	// 1. Pruned SSA construction, done explicitly so the intermediate
	// form can be printed. pipeline.Run would otherwise do this itself;
	// WithSSAInfo below tells it the function already is in SSA form.
	info, err := ssa.Build(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := ssa.Verify(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n---- pruned SSA ----")
	fmt.Print(f)

	// 2. The rest of the paper's pipeline in one call: collect renaming
	// constraints (SP webs, ABI slots), run pinning-based φ coalescing,
	// and translate out of pinned SSA.
	res, err := pipeline.Run(f,
		pipeline.Config{ABI: true, PhiCoalesce: true},
		pipeline.WithSSAInfo(info))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npinning-phi coalesced %d of %d argument slots\n",
		res.Coalesce.Gain, res.Coalesce.PhiSlots)

	fmt.Println("\n---- final code ----")
	fmt.Print(f)
	fmt.Printf("\nmoves remaining: %d (repairs %d, pin moves %d)\n",
		res.Moves, res.Leung.Repairs, res.Leung.PinMoves)

	// 3. The code still computes sums.
	for _, in := range []int64{0, 1, 5, 10} {
		res, err := ir.Exec(f, []int64{in}, 100000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sum(%d) = %d\n", in, res.Outputs[0])
	}
}
