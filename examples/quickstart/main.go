// Quickstart: build a small function with the IR builder, convert it to
// pruned SSA, run the paper's pinning-based coalescing, translate out of
// SSA, and count the move instructions that remain.
package main

import (
	"fmt"
	"log"

	"outofssa/internal/coalesce"
	"outofssa/internal/ir"
	"outofssa/internal/outofssa/leung"
	"outofssa/internal/pin"
	"outofssa/internal/ssa"
)

func main() {
	// sum(n) = 0 + 1 + ... + n-1, as pre-SSA code:
	//
	//   entry: n = input; i = 0; s = 0; jump head
	//   head:  c = i < n; br c -> body, exit
	//   body:  s = s + i; i = i + 1; jump head
	//   exit:  output s
	bld := ir.NewBuilder("sum")
	entry := bld.Block("entry")
	head := bld.Fn.NewBlock("head")
	body := bld.Fn.NewBlock("body")
	exit := bld.Fn.NewBlock("exit")

	n, i, s, c, one := bld.Val("n"), bld.Val("i"), bld.Val("s"), bld.Val("c"), bld.Val("one")

	bld.SetBlock(entry)
	bld.Input(n)
	bld.Const(i, 0)
	bld.Const(s, 0)
	bld.Const(one, 1)
	bld.Jump(head)

	bld.SetBlock(head)
	bld.Binary(ir.CmpLT, c, i, n)
	bld.Br(c, body, exit)

	bld.SetBlock(body)
	bld.Binary(ir.Add, s, s, i)
	bld.Binary(ir.Add, i, i, one)
	bld.Jump(head)

	bld.SetBlock(exit)
	bld.Output(s)

	f := bld.Fn
	fmt.Println("---- input (pre-SSA) ----")
	fmt.Print(f)

	// 1. Pruned SSA construction.
	info, err := ssa.Build(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := ssa.Verify(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n---- pruned SSA ----")
	fmt.Print(f)

	// 2. Collect renaming constraints (SP webs, ABI slots).
	pin.CollectSP(f, info)
	pin.CollectABI(f)

	// 3. The paper's contribution: pinning-based φ coalescing.
	cst, err := coalesce.ProgramPinning(f, coalesce.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npinning-phi coalesced %d of %d argument slots\n", cst.Gain, cst.PhiSlots)

	// 4. Out-of-pinned-SSA translation (Leung-George mark/reconstruct).
	lst, err := leung.Translate(f)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n---- final code ----")
	fmt.Print(f)
	fmt.Printf("\nmoves remaining: %d (repairs %d, pin moves %d)\n",
		f.CountMoves(), lst.Repairs, lst.PinMoves)

	// 5. The code still computes sums.
	for _, in := range []int64{0, 1, 5, 10} {
		res, err := ir.Exec(f, []int64{in}, 100000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sum(%d) = %d\n", in, res.Outputs[0])
	}
}
